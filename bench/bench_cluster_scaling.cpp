// Extension bench: multi-core scaling of the XpulpNN convolution kernels
// on a PULP cluster with shared banked TCDM (row-partitioned parallelism).
// The paper's conclusion points at cluster integration as the scaling path;
// PULP-NN reports near-linear speedups on 8-core clusters.
//
// Two sections:
//   1. Simulated makespan scaling (cycles) across core counts — the
//      architecture-level result.
//   2. Host throughput of the cluster schedulers: per-instruction reference
//      interleaving vs deferred-arbitration burst scheduling with
//      superblocks (DESIGN.md §15). Both are bit-identical by construction
//      (test_cluster_sched); this section quantifies the host speed bought
//      by bursts and gates CI on the 8-core paper-layer speedup.
//
// Emits BENCH_cluster.json (obs::Registry JSON). --min-speedup X exits
// nonzero when the 8-core burst speedup falls below X.
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"
#include "cluster/parallel_conv.hpp"
#include "qnn/pack.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvVariant;

namespace {

struct Measurement {
  u64 instructions = 0;
  double host_seconds = 0;
  double mips() const {
    return host_seconds > 0
               ? static_cast<double>(instructions) / host_seconds / 1e6
               : 0;
  }
};

/// One paper-layer cluster workload, planned once and re-run many times.
struct ClusterWorkload {
  unsigned bits = 0;
  int cores = 0;
  qnn::ConvSpec spec;
  std::vector<xasm::Program> programs;
  kernels::ConvMemLayout layout;
  std::vector<u8> packed_input, packed_weights, packed_thresholds;
};

ClusterWorkload make_workload(const kernels::ConvLayerData& data,
                              ConvVariant v, unsigned bits, int cores) {
  ClusterWorkload w;
  w.bits = bits;
  w.cores = cores;
  w.spec = data.spec;
  const auto kernels = cluster::make_parallel_conv_kernels(w.spec, v, cores);
  for (const auto& k : kernels) {
    w.layout = k.layout;
    w.programs.push_back(k.program);
  }
  w.packed_input = qnn::pack_tensor(data.input, w.spec.in_bits);
  w.packed_weights = qnn::pack_filter_bank(data.weights, w.spec.w_bits);
  if (w.spec.out_bits != 8) {
    w.packed_thresholds = data.thresholds.serialize();
  }
  return w;
}

/// One timed repetition: fresh cluster, time only Cluster::run().
/// Returns the run's ClusterStats; `out_burst` (optional) receives the
/// burst-engine counters, `out_output` the unpacked result tensor.
cluster::ClusterStats one_rep(const ClusterWorkload& w,
                              cluster::SchedulerMode sched, Measurement& m,
                              cluster::ClusterBurstStats* out_burst = nullptr,
                              qnn::Tensor* out_output = nullptr) {
  cluster::ClusterConfig cfg;
  cfg.num_cores = w.cores;
  cfg.core.superblock = true;
  cfg.scheduler = sched;
  cluster::Cluster cl(cfg);
  cl.memory().write_block(w.layout.input, w.packed_input);
  cl.memory().write_block(w.layout.weights, w.packed_weights);
  if (!w.packed_thresholds.empty()) {
    cl.memory().write_block(w.layout.thresholds, w.packed_thresholds);
  }
  cl.load(w.programs);

  const auto t0 = std::chrono::steady_clock::now();
  const cluster::ClusterStats stats = cl.run();
  const auto t1 = std::chrono::steady_clock::now();
  m.host_seconds += std::chrono::duration<double>(t1 - t0).count();
  for (int c = 0; c < w.cores; ++c) {
    m.instructions += cl.core(c).perf().instructions;
  }
  if (out_burst) *out_burst = cl.burst_stats();
  if (out_output) {
    std::vector<u8> out_bytes(w.layout.output_bytes);
    cl.memory().read_block(w.layout.output, out_bytes);
    *out_output = qnn::unpack_tensor(
        out_bytes, {w.spec.out_h(), w.spec.out_w(), w.spec.out_c},
        w.spec.out_bits, /*is_signed=*/false);
  }
  return stats;
}

struct SchedResults {
  Measurement ref, burst;
  cluster::ClusterBurstStats burst_stats;
  bool exact = false;      // both schedulers produced identical stats
  bool output_ok = false;  // burst output matches the golden tensor
};

/// Measure both schedulers in alternating rounds, keeping each scheduler's
/// best round (same noise discipline as bench_sim_throughput: interleaved
/// rounds cancel slow host drift, best-of discards downward scheduler
/// noise symmetrically, first rep of each round is an uncounted warm-up).
SchedResults measure_schedulers(const ClusterWorkload& w,
                                const qnn::Tensor& golden,
                                double round_seconds = 0.15, int rounds = 5) {
  SchedResults out;
  cluster::ClusterStats ref_stats, burst_stats;
  qnn::Tensor burst_out;
  for (int r = 0; r < rounds; ++r) {
    for (int mode = 0; mode < 2; ++mode) {
      const auto sched = mode == 0 ? cluster::SchedulerMode::kReference
                                   : cluster::SchedulerMode::kBurst;
      Measurement warm;
      if (mode == 0) {
        ref_stats = one_rep(w, sched, warm);
      } else {
        burst_stats = one_rep(w, sched, warm, &out.burst_stats, &burst_out);
      }
      Measurement round;
      while (round.host_seconds < round_seconds) one_rep(w, sched, round);
      Measurement& best = mode == 0 ? out.ref : out.burst;
      if (round.mips() > best.mips()) best = round;
    }
  }
  out.exact = ref_stats.makespan == burst_stats.makespan &&
              ref_stats.bank_conflicts == burst_stats.bank_conflicts &&
              ref_stats.data_accesses == burst_stats.data_accesses;
  out.output_ok = burst_out == golden;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --min-speedup X: exit nonzero when the 8-core burst-over-reference
  // host speedup of any paper workload falls below X (the CI gate).
  double required_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc) {
      required_speedup = std::atof(argv[++i]);
    }
  }

  print_header("Cluster scaling -- XpulpNN cores on a shared banked TCDM");
  obs::Registry reg;

  bool all_ok = true;
  for (unsigned bits : {8u, 4u, 2u}) {
    const auto spec = qnn::ConvSpec::paper_layer(bits);
    const auto data = kernels::ConvLayerData::random(spec, kSeed);
    const auto gold = data.golden();
    const ConvVariant v = (bits == 8) ? ConvVariant::kXpulpV2_8b
                                      : ConvVariant::kXpulpNN_HwQ;

    std::printf("\n%u-bit kernel:\n", bits);
    std::printf("%7s %12s %9s %9s %11s %14s %7s\n", "cores", "makespan",
                "speedup", "MAC/cyc", "conflicts", "conflict-rate", "check");
    cycles_t single = 0;
    for (const int n : {1, 2, 4, 8, 16}) {
      cluster::ClusterConfig cfg;
      cfg.num_cores = n;
      const auto res = cluster::run_parallel_conv(data, v, cfg);
      if (n == 1) single = res.stats.makespan;
      bool ok = true;
      for (int i = 0; i < gold.elems() && ok; ++i) {
        ok = gold.flat(i) == res.output.flat(i);
      }
      all_ok = all_ok && ok;
      std::printf("%7d %12llu %8.2fx %9.2f %11llu %13.2f%% %7s\n", n,
                  static_cast<unsigned long long>(res.stats.makespan),
                  static_cast<double>(single) / res.stats.makespan,
                  res.macs_per_cycle(),
                  static_cast<unsigned long long>(res.stats.bank_conflicts),
                  100.0 * res.stats.conflict_rate(), okstr(ok));
      const std::string p =
          "scaling.b" + std::to_string(bits) + ".c" + std::to_string(n);
      reg.counter(p + ".makespan", res.stats.makespan);
      reg.counter(p + ".bank_conflicts", res.stats.bank_conflicts);
      reg.gauge(p + ".speedup_vs_1core",
                static_cast<double>(single) / res.stats.makespan);
      reg.gauge(p + ".macs_per_cycle", res.macs_per_cycle());
      reg.flag(p + ".output_ok", ok);
    }
  }
  std::printf("\n(PULP-NN reports near-linear scaling on 8-core clusters;\n");
  std::printf(" conflicts stay low because the TCDM has 2 banks per core.)\n");

  std::printf("\nHost throughput: reference interleaving vs burst "
              "scheduling (superblocks on)\n");
  double speedup_8core = 1e30;
  for (unsigned bits : {8u, 4u}) {
    const auto data =
        kernels::ConvLayerData::random(qnn::ConvSpec::paper_layer(bits), kSeed);
    const auto gold = data.golden();
    const ConvVariant v = (bits == 8) ? ConvVariant::kXpulpV2_8b
                                      : ConvVariant::kXpulpNN_HwQ;
    std::printf("\n%u-bit kernel:\n", bits);
    std::printf("%7s %11s %9s %11s %9s %9s %8s %7s\n", "cores", "ref-MIPS",
                "ref-s", "burst-MIPS", "burst-s", "speedup", "burst%", "check");
    for (const int n : {1, 2, 4, 8}) {
      const ClusterWorkload w = make_workload(data, v, bits, n);
      const SchedResults r = measure_schedulers(w, gold);
      const double speedup =
          r.ref.mips() > 0 ? r.burst.mips() / r.ref.mips() : 0;
      const u64 total_instr = r.burst_stats.burst_instructions +
                              r.burst_stats.reference_instructions;
      const double burst_frac =
          total_instr ? 100.0 *
                            static_cast<double>(
                                r.burst_stats.burst_instructions) /
                            static_cast<double>(total_instr)
                      : 0;
      const bool ok =
          r.exact && r.output_ok && r.burst_stats.fallback_runs == 0;
      all_ok = all_ok && ok;
      if (n == 8) speedup_8core = std::min(speedup_8core, speedup);
      std::printf("%7d %11.2f %8.3fs %11.2f %8.3fs %8.2fx %7.1f%% %7s\n", n,
                  r.ref.mips(), r.ref.host_seconds, r.burst.mips(),
                  r.burst.host_seconds, speedup, burst_frac, okstr(ok));

      const std::string p =
          "host.b" + std::to_string(bits) + ".c" + std::to_string(n);
      reg.counter(p + ".reference.instructions", r.ref.instructions);
      reg.gauge(p + ".reference.host_seconds", r.ref.host_seconds);
      reg.gauge(p + ".reference.mips", r.ref.mips());
      reg.counter(p + ".burst.instructions", r.burst.instructions);
      reg.gauge(p + ".burst.host_seconds", r.burst.host_seconds);
      reg.gauge(p + ".burst.mips", r.burst.mips());
      reg.gauge(p + ".burst.speedup", speedup);
      reg.counter(p + ".burst.epochs", r.burst_stats.epochs);
      reg.counter(p + ".burst.bursts", r.burst_stats.bursts);
      reg.counter(p + ".burst.burst_instructions",
                  r.burst_stats.burst_instructions);
      reg.counter(p + ".burst.reference_instructions",
                  r.burst_stats.reference_instructions);
      reg.counter(p + ".burst.replayed_accesses",
                  r.burst_stats.replayed_accesses);
      reg.counter(p + ".burst.fallback_runs", r.burst_stats.fallback_runs);
      reg.flag(p + ".exact", r.exact);
      reg.flag(p + ".output_ok", r.output_ok);
    }
  }

  // Headline gate metric: the worst 8-core burst speedup across the two
  // paper workloads. CI commits this bench's JSON and re-gates at half
  // the committed value.
  reg.gauge("speedup_8core", speedup_8core);
  reg.gauge("required_min_speedup", required_speedup);
  reg.flag("all_ok", all_ok);
  std::printf("\n8-core burst speedup (worst of 8b/4b): %.2fx\n",
              speedup_8core);

  all_ok = save_bench_json(reg, "BENCH_cluster.json") && all_ok;
  if (required_speedup > 0 && speedup_8core < required_speedup) {
    std::fprintf(stderr,
                 "FAIL: 8-core burst speedup %.2fx below required %.2fx\n",
                 speedup_8core, required_speedup);
    return 1;
  }
  return all_ok ? 0 : 1;
}
