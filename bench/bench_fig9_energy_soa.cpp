// Fig. 9 reproduction: energy-efficiency comparison across all platforms
// (extended core, RI5CY, STM32L4, STM32H7) for 8/4/2-bit convolutions.
// Paper: two orders of magnitude better than commercial MCUs -- 103x vs
// STM32L4 and 354x vs STM32H7 on the 2-bit kernel.
#include "bench_util.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvVariant;

int main() {
  print_header("Fig. 9 -- energy efficiency vs state-of-the-art MCUs");

  const auto ext = sim::CoreConfig::extended();
  const auto base = sim::CoreConfig::ri5cy();

  struct Entry {
    unsigned bits;
    PlatformResult ext_r, base_r, m4_r, m7_r;
  };
  Entry rows[3];
  const unsigned widths[3] = {8, 4, 2};
  for (int i = 0; i < 3; ++i) {
    const unsigned b = widths[i];
    rows[i].bits = b;
    rows[i].ext_r = run_riscv(
        b, b == 8 ? ConvVariant::kXpulpV2_8b : ConvVariant::kXpulpNN_HwQ, ext);
    rows[i].base_r = run_riscv(
        b, b == 8 ? ConvVariant::kXpulpV2_8b : ConvVariant::kXpulpV2_Sub, base);
    rows[i].m4_r = run_arm(b, armv7e::ArmModel::kCortexM4);
    rows[i].m7_r = run_arm(b, armv7e::ArmModel::kCortexM7);
  }

  std::printf("\nenergy efficiency [GMAC/s/W]:\n");
  std::printf("%6s %14s %14s %14s %14s\n", "bits", "this work", "RI5CY",
              "STM32L4(M4)", "STM32H7(M7)");
  for (const Entry& e : rows) {
    std::printf("%6u %14.1f %14.1f %14.2f %14.2f\n", e.bits,
                e.ext_r.gmac_s_w(), e.base_r.gmac_s_w(), e.m4_r.gmac_s_w(),
                e.m7_r.gmac_s_w());
  }

  std::printf("\noperating points: this work / RI5CY @ 250 MHz (PULPissimo,\n");
  std::printf("22FDX, 0.65 V); STM32L4 @ 80 MHz, %.1f mW; STM32H7 @ 400 MHz,\n",
              power::stm32l4_platform().power_mw);
  std::printf("%.0f mW (datasheet-derived).\n",
              power::stm32h7_platform().power_mw);

  std::printf("\n--- efficiency gain of the extended core ---\n");
  std::printf("%6s %12s %12s %12s\n", "bits", "vs RI5CY", "vs M4", "vs M7");
  for (const Entry& e : rows) {
    std::printf("%6u %11.1fx %11.1fx %11.1fx\n", e.bits,
                e.ext_r.gmac_s_w() / e.base_r.gmac_s_w(),
                e.ext_r.gmac_s_w() / e.m4_r.gmac_s_w(),
                e.ext_r.gmac_s_w() / e.m7_r.gmac_s_w());
  }
  std::printf("(paper, 2-bit: 103x vs STM32L4, 354x vs STM32H7)\n");

  obs::Registry reg;
  reg.text("bench", "fig9_energy_soa");
  reg.text("unit", "GMAC/s/W");
  for (const Entry& e : rows) {
    const std::string key = "rows.bits" + std::to_string(e.bits);
    const struct {
      const char* name;
      const PlatformResult* r;
    } cols[] = {{"extended", &e.ext_r},
                {"ri5cy", &e.base_r},
                {"stm32l4", &e.m4_r},
                {"stm32h7", &e.m7_r}};
    for (const auto& c : cols) {
      add_platform_result(reg, key + "." + c.name, *c.r);
      reg.gauge(key + "." + c.name + ".gmac_s_w", c.r->gmac_s_w());
    }
    reg.gauge(key + ".gain_vs_ri5cy", e.ext_r.gmac_s_w() / e.base_r.gmac_s_w());
    reg.gauge(key + ".gain_vs_m4", e.ext_r.gmac_s_w() / e.m4_r.gmac_s_w());
    reg.gauge(key + ".gain_vs_m7", e.ext_r.gmac_s_w() / e.m7_r.gmac_s_w());
  }
  if (!save_bench_json(reg, "BENCH_fig9_energy.json")) return 1;

  bool ok = true;
  for (const Entry& e : rows) {
    ok = ok && e.ext_r.output_ok && e.base_r.output_ok && e.m4_r.output_ok &&
         e.m7_r.output_ok;
  }
  return ok ? 0 : 1;
}
