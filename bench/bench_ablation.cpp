// Ablation study for the design choices DESIGN.md §7 calls out:
//   1. pv.qnt vs software binary-tree quantization (the paper's Fig. 6 knob);
//   2. XpulpV2 zero-overhead hardware loops vs decrement-and-branch loops
//      in the dot-product loop;
//   3. PULP-NN 4x2 register blocking (2 filters x 2 pixels) vs a 2x1 kernel;
//   4. clock gating / operand isolation on vs off (power only; cycles are
//      unchanged by construction).
#include "bench_util.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvGenOptions;
using kernels::ConvLayerData;
using kernels::ConvVariant;

namespace {

PlatformResult run_opts(unsigned bits, ConvVariant v, const ConvGenOptions& o) {
  const auto cfg = sim::CoreConfig::extended();
  const auto spec = qnn::ConvSpec::paper_layer(bits);
  const auto data = ConvLayerData::random(spec, kSeed);
  const auto res = kernels::run_conv_layer(data, v, cfg, o);
  const auto gold = data.golden();
  bool ok = true;
  for (int i = 0; i < gold.elems() && ok; ++i) {
    ok = gold.flat(i) == res.output.flat(i);
  }
  PlatformResult r;
  r.bits = bits;
  r.cycles = res.perf.cycles;
  r.macs = res.macs;
  r.freq_hz = 250e6;
  r.output_ok = ok;
  return r;
}

}  // namespace

int main() {
  print_header("Ablations -- contribution of each design choice");

  bool all_ok = true;
  std::printf("\n%-6s %-22s %12s %9s %9s %7s\n", "bits", "configuration",
              "cycles", "MAC/cyc", "vs full", "check");
  for (unsigned bits : {8u, 4u, 2u}) {
    const ConvVariant v = (bits == 8) ? ConvVariant::kXpulpV2_8b
                                      : ConvVariant::kXpulpNN_HwQ;
    struct Cfg {
      const char* name;
      ConvGenOptions o;
    };
    const Cfg cfgs[] = {
        {"full (hwloop, 4x2)", {true, 2}},
        {"no hardware loop", {false, 2}},
        {"2x1 blocking", {true, 1}},
        {"neither", {false, 1}},
    };
    cycles_t full = 0;
    for (const Cfg& c : cfgs) {
      const auto r = run_opts(bits, v, c.o);
      if (full == 0) full = r.cycles;
      std::printf("%-6u %-22s %12llu %9.2f %8.2fx %7s\n", bits, c.name,
                  static_cast<unsigned long long>(r.cycles),
                  r.macs_per_cycle(),
                  static_cast<double>(r.cycles) / static_cast<double>(full),
                  okstr(r.output_ok));
      all_ok = all_ok && r.output_ok;
    }
  }

  // Quantization method (sub-byte only) -- Fig. 6's knob restated here.
  std::printf("\n%-6s %-22s %12s %9s\n", "bits", "quantization", "cycles",
              "speedup");
  for (unsigned bits : {4u, 2u}) {
    const auto hw = run_riscv(bits, ConvVariant::kXpulpNN_HwQ,
                              sim::CoreConfig::extended());
    const auto sw = run_riscv(bits, ConvVariant::kXpulpNN_SwQ,
                              sim::CoreConfig::extended());
    std::printf("%-6u %-22s %12llu %9s\n", bits, "software tree",
                static_cast<unsigned long long>(sw.cycles), "1.00x");
    std::printf("%-6u %-22s %12llu %8.2fx\n", bits, "pv.qnt",
                static_cast<unsigned long long>(hw.cycles),
                static_cast<double>(sw.cycles) / hw.cycles);
    all_ok = all_ok && hw.output_ok && sw.output_ok;
  }

  // How much of the XpulpNN gap could a smarter baseline close? The
  // shuffle-based unpack is the best plausible XpulpV2 kernel; the ISA
  // extension still wins by ~3x (4-bit).
  {
    const auto ext = run_riscv(4, ConvVariant::kXpulpNN_HwQ,
                               sim::CoreConfig::extended());
    const auto naive = run_riscv(4, ConvVariant::kXpulpV2_Sub,
                                 sim::CoreConfig::ri5cy());
    const auto shf = run_riscv(4, ConvVariant::kXpulpV2_SubShf,
                               sim::CoreConfig::ri5cy());
    std::printf("\n4-bit baseline unpack strategy (RI5CY):\n");
    std::printf("  p.extract/p.insert : %10llu cycles (%.1fx vs XpulpNN)\n",
                static_cast<unsigned long long>(naive.cycles),
                static_cast<double>(naive.cycles) / ext.cycles);
    std::printf("  pv.shuffle + shift : %10llu cycles (%.1fx vs XpulpNN)\n",
                static_cast<unsigned long long>(shf.cycles),
                static_cast<double>(shf.cycles) / ext.cycles);
    all_ok = all_ok && ext.output_ok && naive.output_ok && shf.output_ok;
  }

  // Power-management knob: same cycles, different power.
  auto nopm = sim::CoreConfig::extended();
  nopm.clock_gating = false;
  const auto p_pm = run_riscv(2, ConvVariant::kXpulpNN_HwQ,
                              sim::CoreConfig::extended());
  const auto p_np = run_riscv(2, ConvVariant::kXpulpNN_HwQ, nopm);
  std::printf("\npower management (2-bit kernel): cycles %llu == %llu, "
              "SoC power %.2f mW vs %.2f mW (+%.0f%%)\n",
              static_cast<unsigned long long>(p_pm.cycles),
              static_cast<unsigned long long>(p_np.cycles), p_pm.power_mw,
              p_np.power_mw, (p_np.power_mw / p_pm.power_mw - 1) * 100);

  return all_ok ? 0 : 1;
}
