// Mixed-precision virtual-SIMD bench: the paper layer (16x16x32 input,
// 64 3x3x32 filters) in every mpc operand format (8x4, 8x2, 4x2) on the
// extended core, against the uniform kernel at the activation width.
//
// The mixed dot products pace on activation words (32/in_bits MACs per
// pv.mlsdot), so a mixed layer should land within a few percent of the
// uniform kernel at the same activation width while reading 2-4x fewer
// weight bytes -- the Ottavi et al. deployment argument. Each row also
// reports the per-selector mixed_dotp_ops breakdown as a self-check that
// every MAC really went through the claimed format.
//
// Emits BENCH_mixed.json (obs::Registry JSON). Exit status gates on all
// outputs bit-exact vs the golden model plus the format breakdown being
// pure (one selector only per run).
#include "bench_util.hpp"
#include "isa/instruction.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvVariant;

namespace {

struct MixedResult {
  PlatformResult plat;
  u64 mixed_ops[3] = {0, 0, 0};
  unsigned sel = 0;
  bool pure = false;  // all mixed dots used this run's selector
};

MixedResult run_mixed(unsigned in_bits, unsigned w_bits,
                      const sim::CoreConfig& cfg) {
  auto spec = qnn::ConvSpec::paper_layer(8);
  spec.in_bits = in_bits;
  spec.w_bits = w_bits;
  spec.out_bits = 8;  // shift/clip output path; accumulators stay i32
  const auto data = kernels::ConvLayerData::random(spec, kSeed);
  const auto res =
      kernels::run_conv_layer(data, ConvVariant::kXpulpNN_Mixed, cfg);
  const auto gold = data.golden();
  bool ok = true;
  for (int i = 0; i < gold.elems() && ok; ++i) {
    ok = gold.flat(i) == res.output.flat(i);
  }
  MixedResult r;
  r.plat.platform = cfg.name + "/xpulpnn-mixed";
  r.plat.bits = in_bits;
  r.plat.cycles = res.perf.cycles;
  r.plat.macs = res.macs;
  r.plat.freq_hz = power::OperatingPoint{}.freq_hz;
  r.plat.quant_cycles = res.quant_cycles;
  r.plat.qnt_stall_cycles = res.perf.qnt_stall_cycles;
  r.plat.output_ok = ok;
  r.sel = kernels::mixed_sel_for(in_bits, w_bits);
  u64 total = 0;
  for (unsigned s = 0; s < isa::kMpcSelCount; ++s) {
    r.mixed_ops[s] = res.perf.mixed_dotp_ops[s];
    total += res.perf.mixed_dotp_ops[s];
  }
  r.pure = total > 0 && total == r.mixed_ops[r.sel];
  return r;
}

}  // namespace

int main() {
  print_header("mixed-precision virtual SIMD -- cycles/MAC per mpc format");

  const auto ext = sim::CoreConfig::extended();

  struct Row {
    unsigned a, w;
    MixedResult mixed;
    PlatformResult uniform;  // uniform kernel at the activation width
  };
  Row rows[3] = {{8, 4, {}, {}}, {8, 2, {}, {}}, {4, 2, {}, {}}};
  for (Row& r : rows) {
    r.mixed = run_mixed(r.a, r.w, ext);
    r.uniform = run_riscv(
        r.a, r.a == 8 ? ConvVariant::kXpulpV2_8b : ConvVariant::kXpulpNN_HwQ,
        ext);
  }

  std::printf("\n%8s %12s %10s %12s %10s %10s\n", "format", "cycles",
              "MAC/cyc", "uniform cyc", "MAC/cyc", "ratio");
  for (const Row& r : rows) {
    std::printf("%5ux%-2u %12llu %10.2f %12llu %10.2f %9.2fx\n", r.a, r.w,
                static_cast<unsigned long long>(r.mixed.plat.cycles),
                r.mixed.plat.macs_per_cycle(),
                static_cast<unsigned long long>(r.uniform.cycles),
                r.uniform.macs_per_cycle(),
                static_cast<double>(r.mixed.plat.cycles) /
                    static_cast<double>(r.uniform.cycles));
  }

  std::printf("\nmixed_dotp_ops breakdown (sel 0: 8x4, 1: 8x2, 2: 4x2):\n");
  for (const Row& r : rows) {
    std::printf("%5ux%-2u  [%llu, %llu, %llu]  %s\n", r.a, r.w,
                static_cast<unsigned long long>(r.mixed.mixed_ops[0]),
                static_cast<unsigned long long>(r.mixed.mixed_ops[1]),
                static_cast<unsigned long long>(r.mixed.mixed_ops[2]),
                r.mixed.pure ? "pure" : "MIXED-FORMAT LEAK");
  }

  obs::Registry reg;
  reg.text("bench", "mixed_precision");
  bool all_ok = true;
  for (const Row& r : rows) {
    const std::string pre =
        "mixed." + std::to_string(r.a) + "x" + std::to_string(r.w);
    add_platform_result(reg, pre, r.mixed.plat);
    reg.counter(pre + ".sel", r.mixed.sel);
    for (unsigned s = 0; s < isa::kMpcSelCount; ++s) {
      reg.counter(pre + ".mixed_dotp_ops." + std::to_string(s),
                  r.mixed.mixed_ops[s]);
    }
    reg.flag(pre + ".format_pure", r.mixed.pure);
    add_platform_result(reg, "uniform." + std::to_string(r.a) + "b",
                        r.uniform);
    reg.gauge(pre + ".cycles_vs_uniform",
              static_cast<double>(r.mixed.plat.cycles) /
                  static_cast<double>(r.uniform.cycles));
    all_ok = all_ok && r.mixed.plat.output_ok && r.uniform.output_ok &&
             r.mixed.pure;
  }
  reg.flag("all_ok", all_ok);

  std::printf("\nall outputs bit-exact vs golden model, formats pure: %s\n",
              okstr(all_ok));
  if (!save_bench_json(reg, "BENCH_mixed.json")) return 1;
  return all_ok ? 0 : 1;
}
