// Fig. 7 reproduction: energy efficiency (GMAC/s/W) of 8/4/2-bit
// convolution kernels on the baseline RI5CY vs the extended core, both in
// PULPissimo at 250 MHz / 0.65 V. Paper: the extended core improves
// sub-byte efficiency by up to ~9x, peaking near 279 GMAC/s/W, without
// hurting the 8-bit kernel.
#include "bench_util.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvVariant;

int main() {
  print_header("Fig. 7 -- energy efficiency: RI5CY vs extended core");

  const auto ext = sim::CoreConfig::extended();
  const auto base = sim::CoreConfig::ri5cy();

  struct Row {
    const char* label;
    PlatformResult r;
  };
  const Row rows[] = {
      {"RI5CY      8-bit", run_riscv(8, ConvVariant::kXpulpV2_8b, base)},
      {"extended   8-bit", run_riscv(8, ConvVariant::kXpulpV2_8b, ext)},
      {"RI5CY      4-bit", run_riscv(4, ConvVariant::kXpulpV2_Sub, base)},
      {"extended   4-bit", run_riscv(4, ConvVariant::kXpulpNN_HwQ, ext)},
      {"RI5CY      2-bit", run_riscv(2, ConvVariant::kXpulpV2_Sub, base)},
      {"extended   2-bit", run_riscv(2, ConvVariant::kXpulpNN_HwQ, ext)},
  };

  std::printf("\n%-18s %10s %9s %9s %12s %7s\n", "platform/kernel", "cycles",
              "mW(SoC)", "ms", "GMAC/s/W", "check");
  for (const Row& row : rows) {
    std::printf("%-18s %10llu %9.2f %9.3f %12.1f %7s\n", row.label,
                static_cast<unsigned long long>(row.r.cycles), row.r.power_mw,
                row.r.runtime_ms(), row.r.gmac_s_w(), okstr(row.r.output_ok));
  }

  std::printf("\n--- efficiency gain extended/baseline (paper: up to 9x) ---\n");
  std::printf("8-bit: %.2fx\n", rows[1].r.gmac_s_w() / rows[0].r.gmac_s_w());
  std::printf("4-bit: %.2fx\n", rows[3].r.gmac_s_w() / rows[2].r.gmac_s_w());
  std::printf("2-bit: %.2fx\n", rows[5].r.gmac_s_w() / rows[4].r.gmac_s_w());
  std::printf("\npeak efficiency: %.1f GMAC/s/W (paper: 279 GMAC/s/W)\n",
              rows[5].r.gmac_s_w());

  obs::Registry reg;
  reg.text("bench", "fig7_energy_core");
  reg.text("unit", "GMAC/s/W");
  for (const Row& row : rows) {
    const std::string key =
        std::string("rows.") + row.r.platform + "_" + std::to_string(row.r.bits);
    add_platform_result(reg, key, row.r);
    reg.gauge(key + ".power_mw", row.r.power_mw);
    reg.gauge(key + ".gmac_s_w", row.r.gmac_s_w());
  }
  reg.gauge("gain.bits8", rows[1].r.gmac_s_w() / rows[0].r.gmac_s_w());
  reg.gauge("gain.bits4", rows[3].r.gmac_s_w() / rows[2].r.gmac_s_w());
  reg.gauge("gain.bits2", rows[5].r.gmac_s_w() / rows[4].r.gmac_s_w());
  reg.gauge("peak_gmac_s_w", rows[5].r.gmac_s_w());
  if (!save_bench_json(reg, "BENCH_fig7_energy.json")) return 1;

  for (const Row& row : rows) {
    if (!row.r.output_ok) return 1;
  }
  return 0;
}
