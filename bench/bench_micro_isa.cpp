// google-benchmark micro suite: host-side throughput of the simulator
// building blocks (decode, SIMD dot products, quantization walk, full-core
// stepping) plus simulated-cycle counts of the key inner loops. Useful for
// keeping the simulator itself fast and for documenting per-instruction
// costs.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "isa/decoder.hpp"
#include "isa/encoding.hpp"
#include "qnn/thresholds.hpp"
#include "sim/core.hpp"
#include "sim/dotp_unit.hpp"
#include "sim/quant_unit.hpp"
#include "xasm/assembler.hpp"

namespace {

using namespace xpulp;
namespace r = xasm::reg;

void BM_Decode(benchmark::State& state) {
  // A mix of base-ISA and extension encodings.
  std::vector<u32> words;
  xasm::Assembler a(0);
  a.addi(r::a0, r::a1, 5);
  a.lw(r::a2, r::a0, 8);
  a.pv_sdotusp(isa::SimdFmt::kN, r::a4, r::a2, r::a3);
  a.p_lw_post(r::a5, r::a0, 4);
  a.mul(r::a6, r::a0, r::a1);
  auto prog = a.finish();
  for (const u32 w : prog.words()) words.push_back(w);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::decode(words[i % words.size()], 0));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Decode);

void BM_DotpUnit(benchmark::State& state) {
  const auto fmt = static_cast<isa::SimdFmt>(state.range(0));
  sim::DotpUnit unit;
  Rng rng(1);
  u32 a = rng.next_u32(), b = rng.next_u32();
  i32 acc = 0;
  for (auto _ : state) {
    acc = unit.dotp(isa::Mnemonic::kPvSdotusp, fmt, a, b, acc);
    a = a * 1664525u + 1013904223u;
    b ^= a >> 3;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          isa::simd_elem_count(fmt));
}
BENCHMARK(BM_DotpUnit)
    ->Arg(static_cast<int>(isa::SimdFmt::kB))
    ->Arg(static_cast<int>(isa::SimdFmt::kN))
    ->Arg(static_cast<int>(isa::SimdFmt::kC));

void BM_QuantWalk(benchmark::State& state) {
  mem::Memory mem(1024);
  Rng rng(2);
  const auto th = qnn::Thresholds::random(rng, 4, -2000, 2000);
  const auto bytes = qnn::LayerThresholds(4, {th, th}).serialize();
  mem.write_block(0, bytes);
  sim::QuantUnit unit;
  u32 acts = 0;
  for (auto _ : state) {
    const auto res = unit.execute(mem, acts, 0, 4);
    benchmark::DoNotOptimize(res.rd);
    acts += 0x00010003u;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_QuantWalk);

/// Simulator throughput on the hot inner loop (host instr/s).
void BM_CoreStepLoop(benchmark::State& state) {
  mem::Memory mem;
  xasm::Assembler a(0);
  a.li(r::a0, 0x10000);
  a.li(r::a1, 0x20000);
  // Sized so the streaming pointers stay inside the 512 kB TCDM; the
  // harness resets the program when it halts.
  a.li(r::t0, 50'000);
  auto end = a.new_label();
  a.lp_setup(0, r::t0, end);
  a.p_lw_post(r::t1, r::a0, 4);
  a.p_lw_post(r::t2, r::a1, 4);
  a.pv_sdotusp(isa::SimdFmt::kN, r::a4, r::t1, r::t2);
  a.pv_sdotusp(isa::SimdFmt::kN, r::a5, r::t1, r::t2);
  a.bind(end);
  a.ecall();
  auto prog = a.finish();
  prog.load(mem);
  sim::Core core(mem);
  core.reset(0);
  // Consume the setup instructions once.
  for (int i = 0; i < 4; ++i) core.step();
  u64 steps = 0;
  for (auto _ : state) {
    if (core.halted()) {
      state.PauseTiming();
      core.reset(0);
      state.ResumeTiming();
    }
    core.step();
    ++steps;
  }
  state.SetItemsProcessed(static_cast<int64_t>(steps));
}
BENCHMARK(BM_CoreStepLoop);

void BM_Encode(benchmark::State& state) {
  isa::Instr in;
  in.op = isa::Mnemonic::kPvSdotsp;
  in.fmt = isa::SimdFmt::kC;
  in.rd = 4;
  in.rs1 = 5;
  in.rs2 = 6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::encode(in));
  }
}
BENCHMARK(BM_Encode);

}  // namespace

BENCHMARK_MAIN();
