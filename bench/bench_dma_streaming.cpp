// Extension bench: µDMA double-buffered weight streaming. Layers whose
// weights live in external L2 are executed tile-by-tile; the ping-pong
// scheme overlaps the next tile's transfer with the current tile's
// compute. DMA-bound layers (fully-connected: few MACs per weight byte)
// show the benefit most clearly.
#include "bench_util.hpp"
#include "kernels/linear.hpp"
#include "soc/streamed_conv.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvVariant;

namespace {

void report(const char* name, const kernels::ConvLayerData& data,
            const qnn::Tensor& gold, int tile, u32 dma_bpc) {
  std::printf("\n%s (tile = %d channels, DMA %u B/cycle):\n", name, tile,
              dma_bpc);
  std::printf("%14s %12s %12s %12s %10s %7s\n", "scheme", "compute",
              "dma", "makespan", "hidden", "check");
  for (const bool dbuf : {false, true}) {
    const auto res =
        soc::run_conv_streamed(data, ConvVariant::kXpulpNN_HwQ,
                               sim::CoreConfig::extended(), tile, dbuf,
                               dma_bpc);
    bool ok = true;
    for (int i = 0; i < gold.elems() && ok; ++i) {
      ok = gold.flat(i) == res.output.flat(i);
    }
    std::printf("%14s %12llu %12llu %12llu %9.1f%% %7s\n",
                dbuf ? "double-buffer" : "serial",
                static_cast<unsigned long long>(res.compute_cycles),
                static_cast<unsigned long long>(res.dma_cycles),
                static_cast<unsigned long long>(res.makespan),
                100.0 * res.overlap_efficiency(), okstr(ok));
  }
}

}  // namespace

int main() {
  print_header("uDMA weight streaming -- serial vs double-buffered tiles");

  // The paper's conv layer: compute-bound, streaming is essentially free.
  const auto conv_spec = qnn::ConvSpec::paper_layer(4);
  const auto conv = kernels::ConvLayerData::random(conv_spec, kSeed);
  report("4-bit conv 16x16x32 -> 64ch", conv, conv.golden(), 8, 4);

  // A large fully-connected layer: DMA-bound at 1 B/cycle, the classic
  // double-buffering win.
  const auto fc = kernels::LinearLayerData::random(1024, 128, 4, kSeed);
  const auto fc_conv = fc.as_conv();
  report("4-bit FC 1024 -> 128", fc_conv, fc.golden(), 32, 1);
  report("4-bit FC 1024 -> 128", fc_conv, fc.golden(), 32, 4);

  std::printf("\n(weights stay in L2; the TCDM holds only the ping-pong tile\n");
  std::printf(" buffers, so layers larger than the 512 kB L1 stay runnable.)\n");
  return 0;
}
