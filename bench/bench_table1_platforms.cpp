// Table I reproduction: the QNN embedded-platform landscape. The ASIC/FPGA
// and commercial-MCU rows are the paper's literature figures (constants);
// the "This Work" row is *measured* on our simulated platform from the
// 2-bit convolution kernel at the paper's operating point.
#include "bench_util.hpp"

using namespace xpulp;
using namespace xpulp::bench;

int main() {
  print_header("Table I -- QNN embedded computing platforms");

  // Measure "This Work": throughput/efficiency range across 8/4/2-bit
  // kernels on the extended core (Gop = 2 x MAC, the paper's convention).
  const auto ext = sim::CoreConfig::extended();
  const auto r8 = run_riscv(8, kernels::ConvVariant::kXpulpV2_8b, ext);
  const auto r2 = run_riscv(2, kernels::ConvVariant::kXpulpNN_HwQ, ext);
  const double gops_lo = 2.0 * r8.macs_per_cycle() * r8.freq_hz * 1e-9;
  const double gops_hi = 2.0 * r2.macs_per_cycle() * r2.freq_hz * 1e-9;
  const double eff_lo = 2.0 * r8.gmac_s_w();
  const double eff_hi = 2.0 * r2.gmac_s_w();
  const double power_mw = r2.power_mw;

  std::printf("\n%-14s %16s %18s %14s %12s\n", "platform", "perf [Gop/s]",
              "eff [Gop/s/W]", "power [mW]", "flexibility");
  std::printf("%-14s %16s %18s %14s %12s\n", "ASICs", "1K - 50K",
              "10K - 100K", "1 - 1K", "low");
  std::printf("%-14s %16s %18s %14s %12s\n", "FPGAs", "10 - 200", "1 - 10",
              "1 - 1K", "medium");
  std::printf("%-14s %16s %18s %14s %12s\n", "MCUs", "0.1 - 2", "1 - 50",
              "1 - 1K", "high");
  std::printf("%-14s %9.1f - %4.1f %11.0f - %4.0f %14.1f %12s   <- measured\n",
              "This Work", gops_lo, gops_hi, eff_lo, eff_hi, power_mw, "high");
  std::printf("\n(paper's This-Work row: 1 - 5 Gop/s, 80 - 550 Gop/s/W, 1 - 100 mW)\n");
  return (r8.output_ok && r2.output_ok) ? 0 : 1;
}
