// Table III reproduction: component areas of the baseline and extended
// cores (with and without the power-management design), core power on the
// 8-bit MatMul, and PULPissimo SoC power across kernels and the GP
// application. Paper values are printed side-by-side.
#include "bench_util.hpp"
#include "kernels/gp_workload.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvVariant;

namespace {

struct Powers {
  double core_mw;
  double soc_mw;
};

Powers conv_power(unsigned bits, ConvVariant v, const sim::CoreConfig& cfg) {
  const auto spec = qnn::ConvSpec::paper_layer(bits);
  const auto data = kernels::ConvLayerData::random(spec, kSeed);
  const auto res = kernels::run_conv_layer(data, v, cfg);
  const auto p =
      power::estimate_power(res.perf, res.activity, res.mem_stats, cfg);
  return {p.core.core_mw(), p.soc_mw()};
}

Powers gp_power(const sim::CoreConfig& cfg) {
  const auto w = kernels::make_gp_workload();
  mem::Memory mem;
  w.program.load(mem);
  sim::Core core(mem, cfg);
  core.reset(w.program.entry());
  core.run();
  const auto p = power::estimate_power(core.perf(), core.dotp_unit().activity(),
                                       mem.stats(), cfg);
  return {p.core.core_mw(), p.soc_mw()};
}

}  // namespace

int main() {
  print_header("Table III -- area and power (22FDX model, 0.65 V TT, 250 MHz)");

  // ---- Area ----
  std::printf("\nArea [um^2] (overhead vs baseline):      paper overhead:\n");
  std::printf("%-10s %10s %18s %18s\n", "", "RI5CY", "Ext. no-PM", "Ext. PM");
  struct PaperOverheads {
    const char* name;
    double nopm, pm;
  };
  const PaperOverheads paper[] = {{"Total", 8.59, 11.1},
                                  {"dotp-Unit", 18.3, 19.9},
                                  {"ID Stage", 1.0, 5.0},
                                  {"EX Stage", 17.1, 18.4},
                                  {"LSU", 17.9, 14.1}};
  const auto table = power::area_table();
  for (size_t i = 0; i < table.size(); ++i) {
    const auto& row = table[i];
    std::printf("%-10s %10.1f %10.1f (%4.1f%%) %10.1f (%4.1f%%)   [%4.1f%% / %4.1f%%]\n",
                row.component.c_str(), row.ri5cy_um2, row.ext_nopm_um2,
                (row.ext_nopm_um2 / row.ri5cy_um2 - 1) * 100, row.ext_pm_um2,
                (row.ext_pm_um2 / row.ri5cy_um2 - 1) * 100, paper[i].nopm,
                paper[i].pm);
  }

  // ---- Core power on the 8-bit MatMul ----
  const auto base = sim::CoreConfig::ri5cy();
  const auto pm = sim::CoreConfig::extended();
  auto nopm = sim::CoreConfig::extended();
  nopm.clock_gating = false;
  nopm.name = "xpulpnn-nopm";

  const auto c_base = conv_power(8, ConvVariant::kXpulpV2_8b, base);
  const auto c_nopm = conv_power(8, ConvVariant::kXpulpV2_8b, nopm);
  const auto c_pm = conv_power(8, ConvVariant::kXpulpV2_8b, pm);

  std::printf("\nCore power on 8-bit MatMul [mW]      (paper)\n");
  std::printf("  RI5CY:            %6.3f            (1.15)\n", c_base.core_mw);
  std::printf("  Ext., no PM:      %6.3f            (1.41)  [model diverges: see EXPERIMENTS.md]\n",
              c_nopm.core_mw);
  std::printf("  Ext., PM:         %6.3f            (1.22)\n", c_pm.core_mw);
  std::printf("  PM overhead vs baseline: %.1f%%     (paper: 5.9%%)\n",
              (c_pm.core_mw / c_base.core_mw - 1) * 100);

  // ---- SoC power ----
  const auto s4_pm = conv_power(4, ConvVariant::kXpulpNN_HwQ, pm);
  const auto s4_np = conv_power(4, ConvVariant::kXpulpNN_HwQ, nopm);
  const auto s2_pm = conv_power(2, ConvVariant::kXpulpNN_HwQ, pm);
  const auto s2_np = conv_power(2, ConvVariant::kXpulpNN_HwQ, nopm);
  const auto g_base = gp_power(base);
  const auto g_pm = gp_power(pm);
  const auto g_np = gp_power(nopm);

  std::printf("\nPULPissimo SoC power [mW]            RI5CY    no-PM     PM    (paper)\n");
  std::printf("  8-bit MatMul:   %9.2f %8.2f %7.2f   (5.93 / 6.28 / 6.04)\n",
              c_base.soc_mw, c_nopm.soc_mw, c_pm.soc_mw);
  std::printf("  4-bit MatMul:   %9s %8.2f %7.2f   (  -  / 8.14 / 5.71)\n", "-",
              s4_np.soc_mw, s4_pm.soc_mw);
  std::printf("  2-bit MatMul:   %9s %8.2f %7.2f   (  -  / 8.99 / 5.87)\n", "-",
              s2_np.soc_mw, s2_pm.soc_mw);
  std::printf("  GP application: %9.2f %8.2f %7.2f   (5.65 / 8.20 / 5.85)\n",
              g_base.soc_mw, g_np.soc_mw, g_pm.soc_mw);
  std::printf("\n  GP no-PM penalty: %.1f%% (paper: 45.2%%);"
              "  GP PM penalty: %.1f%% (paper: 3.5%%)\n",
              (g_np.soc_mw / g_pm.soc_mw - 1) * 100,
              (g_pm.soc_mw / g_base.soc_mw - 1) * 100);
  return 0;
}
