// Fig. 6 reproduction: (a) sub-byte kernel cycles scale almost linearly
// with respect to the 8-bit kernel on the extended core; (b) the pv.qnt
// instruction shrinks the quantization share of total cycles and speeds up
// the whole kernel vs software (binary-tree) quantization.
//
// Paper reference points: quantization share with pv.qnt ~4% (4-bit) and
// ~11% (2-bit); kernel speedup from pv.qnt 1.21x (4-bit) and 1.16x (2-bit);
// near-linear 8b -> 4b -> 2b cycle scaling.
//
// Emits BENCH_fig6.json (obs::Registry JSON) next to the binary's working
// directory.
#include "bench_util.hpp"
#include "obs/registry.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvVariant;

int main() {
  print_header("Fig. 6 -- sub-byte scaling and pv.qnt impact (extended core)");

  const auto ext = sim::CoreConfig::extended();
  const auto r8 = run_riscv(8, ConvVariant::kXpulpV2_8b, ext);
  const auto h4 = run_riscv(4, ConvVariant::kXpulpNN_HwQ, ext);
  const auto s4 = run_riscv(4, ConvVariant::kXpulpNN_SwQ, ext);
  const auto h2 = run_riscv(2, ConvVariant::kXpulpNN_HwQ, ext);
  const auto s2 = run_riscv(2, ConvVariant::kXpulpNN_SwQ, ext);

  std::printf("\n%-28s %10s %9s %12s %9s\n", "kernel", "cycles", "MAC/cyc",
              "quant-cycles", "check");
  auto row = [](const char* name, const PlatformResult& r) {
    std::printf("%-28s %10llu %9.2f %12llu %9s\n", name,
                static_cast<unsigned long long>(r.cycles), r.macs_per_cycle(),
                static_cast<unsigned long long>(r.quant_cycles),
                okstr(r.output_ok));
  };
  row("8-bit (reference)", r8);
  row("4-bit + sw-tree quant", s4);
  row("4-bit + pv.qnt", h4);
  row("2-bit + sw-tree quant", s2);
  row("2-bit + pv.qnt", h2);

  std::printf("\n--- kernel speedup from pv.qnt (paper: 1.21x / 1.16x) ---\n");
  std::printf("4-bit: %.2fx\n",
              static_cast<double>(s4.cycles) / static_cast<double>(h4.cycles));
  std::printf("2-bit: %.2fx\n",
              static_cast<double>(s2.cycles) / static_cast<double>(h2.cycles));

  std::printf("\n--- quantization share of total cycles ---\n");
  std::printf("                       quant-code   pv.qnt-only  (paper: 4%% / 11%%)\n");
  std::printf("4-bit sw-tree: %10.1f%%\n",
              100.0 * static_cast<double>(s4.quant_cycles) / s4.cycles);
  std::printf("4-bit pv.qnt:  %10.1f%%  %10.1f%%\n",
              100.0 * static_cast<double>(h4.quant_cycles) / h4.cycles,
              100.0 * static_cast<double>(h4.qnt_stall_cycles + h4.qnt_stall_cycles / 8) /
                  h4.cycles);
  std::printf("2-bit sw-tree: %10.1f%%\n",
              100.0 * static_cast<double>(s2.quant_cycles) / s2.cycles);
  std::printf("2-bit pv.qnt:  %10.1f%%  %10.1f%%\n",
              100.0 * static_cast<double>(h2.quant_cycles) / h2.cycles,
              100.0 * static_cast<double>(h2.qnt_stall_cycles + h2.qnt_stall_cycles / 4) /
                  h2.cycles);

  std::printf("\n--- scaling vs 8-bit (paper: 'almost linear') ---\n");
  std::printf("4-bit speedup over 8-bit: %.2fx (linear would be 2x)\n",
              static_cast<double>(r8.cycles) / static_cast<double>(h4.cycles));
  std::printf("2-bit speedup over 8-bit: %.2fx (linear would be 4x)\n",
              static_cast<double>(r8.cycles) / static_cast<double>(h2.cycles));

  obs::Registry reg;
  reg.text("bench", "fig6_quant_impact");
  add_platform_result(reg, "kernels.8b", r8);
  add_platform_result(reg, "kernels.4b_swq", s4);
  add_platform_result(reg, "kernels.4b_hwq", h4);
  add_platform_result(reg, "kernels.2b_swq", s2);
  add_platform_result(reg, "kernels.2b_hwq", h2);
  reg.gauge("speedup_from_qnt.4b",
            static_cast<double>(s4.cycles) / static_cast<double>(h4.cycles));
  reg.gauge("speedup_from_qnt.2b",
            static_cast<double>(s2.cycles) / static_cast<double>(h2.cycles));
  reg.gauge("quant_share.4b_swq",
            static_cast<double>(s4.quant_cycles) / static_cast<double>(s4.cycles));
  reg.gauge("quant_share.4b_hwq",
            static_cast<double>(h4.quant_cycles) / static_cast<double>(h4.cycles));
  reg.gauge("quant_share.2b_swq",
            static_cast<double>(s2.quant_cycles) / static_cast<double>(s2.cycles));
  reg.gauge("quant_share.2b_hwq",
            static_cast<double>(h2.quant_cycles) / static_cast<double>(h2.cycles));
  reg.gauge("scaling_vs_8b.4b",
            static_cast<double>(r8.cycles) / static_cast<double>(h4.cycles));
  reg.gauge("scaling_vs_8b.2b",
            static_cast<double>(r8.cycles) / static_cast<double>(h2.cycles));

  const bool all_ok = r8.output_ok && h4.output_ok && s4.output_ok &&
                      h2.output_ok && s2.output_ok;
  reg.flag("all_ok", all_ok);
  if (!save_bench_json(reg, "BENCH_fig6.json")) return 1;
  return all_ok ? 0 : 1;
}
