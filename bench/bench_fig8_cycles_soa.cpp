// Fig. 8 reproduction: execution cycles of 8/4/2-bit convolution kernels on
// the extended core, the baseline RI5CY, and the STM32L4 (Cortex-M4) /
// STM32H7 (Cortex-M7) models running CMSIS-NN-style kernels.
//
// Paper reference points: sub-byte kernels run 5.3x (4-bit) and 8.9x
// (2-bit) faster on the extended core than on RI5CY; roughly one order of
// magnitude faster than the ARM MCUs.
#include "bench_util.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvVariant;

int main() {
  print_header("Fig. 8 -- execution cycles vs state-of-the-art MCUs");

  const auto ext = sim::CoreConfig::extended();
  const auto base = sim::CoreConfig::ri5cy();

  struct Entry {
    unsigned bits;
    PlatformResult ext_r, base_r, m4_r, m7_r;
  };
  Entry rows[3];
  const unsigned widths[3] = {8, 4, 2};
  for (int i = 0; i < 3; ++i) {
    const unsigned b = widths[i];
    rows[i].bits = b;
    rows[i].ext_r = run_riscv(
        b, b == 8 ? ConvVariant::kXpulpV2_8b : ConvVariant::kXpulpNN_HwQ, ext);
    rows[i].base_r = run_riscv(
        b, b == 8 ? ConvVariant::kXpulpV2_8b : ConvVariant::kXpulpV2_Sub, base);
    rows[i].m4_r = run_arm(b, armv7e::ArmModel::kCortexM4);
    rows[i].m7_r = run_arm(b, armv7e::ArmModel::kCortexM7);
  }

  std::printf("\nexecution cycles (millions):\n");
  std::printf("%6s %14s %14s %14s %14s\n", "bits", "this work", "RI5CY",
              "STM32L4(M4)", "STM32H7(M7)");
  for (const Entry& e : rows) {
    std::printf("%6u %14.3f %14.3f %14.3f %14.3f\n", e.bits,
                e.ext_r.cycles / 1e6, e.base_r.cycles / 1e6,
                e.m4_r.cycles / 1e6, e.m7_r.cycles / 1e6);
  }

  std::printf("\nMAC/cycle:\n");
  std::printf("%6s %14s %14s %14s %14s\n", "bits", "this work", "RI5CY",
              "STM32L4(M4)", "STM32H7(M7)");
  for (const Entry& e : rows) {
    std::printf("%6u %14.2f %14.2f %14.2f %14.2f\n", e.bits,
                e.ext_r.macs_per_cycle(), e.base_r.macs_per_cycle(),
                e.m4_r.macs_per_cycle(), e.m7_r.macs_per_cycle());
  }

  std::printf("\n--- speedup of the extended core (cycles) ---\n");
  std::printf("%6s %12s %12s %12s\n", "bits", "vs RI5CY", "vs M4", "vs M7");
  for (const Entry& e : rows) {
    std::printf("%6u %11.1fx %11.1fx %11.1fx\n", e.bits,
                static_cast<double>(e.base_r.cycles) / e.ext_r.cycles,
                static_cast<double>(e.m4_r.cycles) / e.ext_r.cycles,
                static_cast<double>(e.m7_r.cycles) / e.ext_r.cycles);
  }
  std::printf("(paper: 5.3x vs RI5CY at 4-bit, 8.9x at 2-bit; ~1 order of\n");
  std::printf(" magnitude vs the ARM MCUs on sub-byte kernels)\n");

  bool ok = true;
  for (const Entry& e : rows) {
    ok = ok && e.ext_r.output_ok && e.base_r.output_ok && e.m4_r.output_ok &&
         e.m7_r.output_ok;
  }
  std::printf("\nall outputs bit-exact vs golden model: %s\n", okstr(ok));
  return ok ? 0 : 1;
}
