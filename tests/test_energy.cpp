// obs::EnergyProfiler: exactly-reconciled per-region / per-class energy
// attribution. The three-layer invariant (integer counter partition,
// bit-identical energy over summed counters, FP-honest region sum) must
// hold for both paper conv kernel families under every dispatch-mode
// configuration, and the attributed total must agree with the power
// model priced over the whole run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>

#include "kernels/conv_layer.hpp"
#include "obs/energy.hpp"
#include "sim/core.hpp"

namespace xpulp::obs {
namespace {

using kernels::ConvVariant;

struct Workload {
  unsigned bits;
  ConvVariant variant;
};

const Workload kWorkloads[] = {
    {8, ConvVariant::kXpulpV2_8b},
    {4, ConvVariant::kXpulpNN_HwQ},
};

qnn::ConvSpec small_spec(unsigned bits) {
  qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(bits);
  spec.in_h = spec.in_w = 6;
  spec.in_c = 16;
  spec.out_c = 8;
  return spec;
}

struct ProfiledRun {
  EnergyCell total;
  std::vector<RegionEnergy> regions;
  std::string violation;
  cycles_t cycles = 0;
  sim::CoreConfig cfg;
};

ProfiledRun run_profiled(const Workload& w, const char* mode) {
  const auto data = kernels::ConvLayerData::random(small_spec(w.bits), 7);
  const qnn::ConvSpec& spec = data.spec;
  kernels::ConvKernel kernel =
      kernels::generate_conv_kernel(spec, w.variant, 0x40000);

  mem::Memory mem;
  kernel.program.load(mem);
  kernels::load_conv_data(data, kernel.layout, mem);

  sim::CoreConfig cfg = sim::CoreConfig::extended();
  cfg.reference_dispatch = !strcmp(mode, "reference");
  cfg.superblock = !strcmp(mode, "superblock");
  sim::Core core(mem, cfg);
  core.reset(kernel.program.entry(),
             kernel.program.base() + kernel.program.size_bytes());

  EnergyProfiler prof(core, kernel.regions);
  EXPECT_EQ(core.run(600'000'000), sim::HaltReason::kEcall);
  prof.finalize();

  ProfiledRun r;
  r.total = prof.total();
  r.regions = prof.region_energies();
  r.violation = prof.reconciliation_violation();
  r.cycles = core.perf().cycles;
  r.cfg = cfg;
  return r;
}

TEST(EnergyProfiler, ReconciliationHoldsAcrossModesAndWorkloads) {
  for (const Workload& w : kWorkloads) {
    cycles_t ref_cycles = 0;
    for (const char* mode : {"reference", "fast", "superblock"}) {
      const ProfiledRun r = run_profiled(w, mode);
      EXPECT_EQ(r.violation, "") << "bits " << w.bits << " mode " << mode;
      EXPECT_GT(r.total.energy.soc_pj(), 0.0);
      if (ref_cycles == 0) {
        ref_cycles = r.cycles;
      } else {
        // Same kernel, same counters: attribution is dispatch-independent.
        EXPECT_EQ(r.cycles, ref_cycles)
            << "bits " << w.bits << " mode " << mode;
      }
    }
  }
}

TEST(EnergyProfiler, RegionCountersPartitionTheRunExactly) {
  const ProfiledRun r = run_profiled(kWorkloads[1], "fast");
  u64 cycles = 0, instrs = 0;
  double pj = 0;
  int nonempty = 0;
  for (const RegionEnergy& re : r.regions) {
    cycles += re.cell.perf.cycles;
    instrs += re.cell.perf.instructions;
    pj += re.cell.energy.soc_pj();
    if (re.cell.perf.instructions != 0) ++nonempty;
  }
  EXPECT_EQ(cycles, r.total.perf.cycles);
  EXPECT_EQ(instrs, r.total.perf.instructions);
  EXPECT_GE(nonempty, 3);  // im2col, matmul, quant at least
  EXPECT_NEAR(pj, r.total.energy.soc_pj(),
              1e-9 * std::max(1.0, r.total.energy.soc_pj()));
}

TEST(EnergyProfiler, TotalEnergyAgreesWithThePowerModel) {
  const ProfiledRun r = run_profiled(kWorkloads[1], "fast");
  // estimate_power is energy/cycles rescaled, so pricing the whole run's
  // counters must agree with energy * frequency / cycles.
  const power::OperatingPoint op{};
  const power::EnergyBreakdown e = power::estimate_energy(
      r.total.perf, r.total.dotp, r.total.mem, r.cfg, op);
  EXPECT_DOUBLE_EQ(e.soc_pj(), r.total.energy.soc_pj());

  const double seconds =
      static_cast<double>(r.total.perf.cycles) / op.freq_hz;
  const double avg_mw = r.total.energy.soc_pj() * 1e-12 / seconds * 1e3;
  const power::SocPower p = power::estimate_power(r.total.perf, r.total.dotp,
                                                  r.total.mem, r.cfg, op);
  EXPECT_NEAR(avg_mw, p.soc_mw(), 1e-9 * std::max(1.0, p.soc_mw()));
}

TEST(EnergyProfiler, CollapsedStacksAreWellFormedAndCoverRegions) {
  const ProfiledRun r = run_profiled(kWorkloads[1], "fast");
  // Re-run to access collapsed_stacks (ProfiledRun doesn't keep the
  // profiler); cheaper: rebuild from regions. Instead exercise the
  // exporter directly on a fresh run.
  const auto data = kernels::ConvLayerData::random(small_spec(4), 7);
  kernels::ConvKernel kernel = kernels::generate_conv_kernel(
      data.spec, ConvVariant::kXpulpNN_HwQ, 0x40000);
  mem::Memory mem;
  kernel.program.load(mem);
  kernels::load_conv_data(data, kernel.layout, mem);
  sim::Core core(mem, sim::CoreConfig::extended());
  core.reset(kernel.program.entry(),
             kernel.program.base() + kernel.program.size_bytes());
  EnergyProfiler prof(core, kernel.regions);
  ASSERT_EQ(core.run(600'000'000), sim::HaltReason::kEcall);
  prof.finalize();

  const std::string stacks = prof.collapsed_stacks("core0");
  ASSERT_FALSE(stacks.empty());
  std::istringstream is(stacks);
  std::string line;
  bool saw_matmul = false;
  long long total_pj = 0;
  while (std::getline(is, line)) {
    // "core0;<region>;<component> <integer pJ>"
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string frames = line.substr(0, sp);
    const long long pj = std::stoll(line.substr(sp + 1));
    EXPECT_GT(pj, 0) << line;
    total_pj += pj;
    EXPECT_EQ(frames.rfind("core0;", 0), 0u) << line;
    if (frames.find(";matmul;") != std::string::npos) saw_matmul = true;
  }
  EXPECT_TRUE(saw_matmul);
  // Integer-rounded stack weights track the FP total closely.
  EXPECT_NEAR(static_cast<double>(total_pj), r.total.energy.soc_pj(),
              r.total.energy.soc_pj() * 0.01);
}

TEST(EnergyProfiler, RegistryExportPublishesTotalsAndRegions) {
  const auto data = kernels::ConvLayerData::random(small_spec(4), 7);
  kernels::ConvKernel kernel = kernels::generate_conv_kernel(
      data.spec, ConvVariant::kXpulpNN_HwQ, 0x40000);
  mem::Memory mem;
  kernel.program.load(mem);
  kernels::load_conv_data(data, kernel.layout, mem);
  sim::Core core(mem, sim::CoreConfig::extended());
  core.reset(kernel.program.entry(),
             kernel.program.base() + kernel.program.size_bytes());
  EnergyProfiler prof(core, kernel.regions);
  ASSERT_EQ(core.run(600'000'000), sim::HaltReason::kEcall);
  prof.finalize();

  Registry reg;
  prof.add_to_registry(reg, "energy");
  EXPECT_TRUE(reg.contains("energy.total.soc_pj"));
  EXPECT_TRUE(reg.contains("energy.total.cycles"));
  EXPECT_TRUE(reg.contains("energy.regions.matmul.soc_pj"));
  EXPECT_TRUE(reg.contains("energy.regions.other.soc_pj"));
}

}  // namespace
}  // namespace xpulp::obs
