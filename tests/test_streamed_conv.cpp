// µDMA weight streaming: functional equivalence with the resident kernels,
// makespan accounting, and the double-buffering benefit.
#include <gtest/gtest.h>

#include "kernels/linear.hpp"
#include "soc/streamed_conv.hpp"

namespace xpulp::soc {
namespace {

using kernels::ConvLayerData;
using kernels::ConvVariant;

qnn::ConvSpec small_spec(unsigned bits) {
  qnn::ConvSpec s;
  s.in_h = s.in_w = 6;
  s.in_c = 16;
  s.out_c = 16;
  s.in_bits = s.w_bits = s.out_bits = bits;
  return s;
}

TEST(Udma, TransferCycleModel) {
  mem::Memory l2(4096), tcdm(4096);
  Udma dma(l2, tcdm, 4, 16);
  EXPECT_EQ(dma.transfer_cycles(0), 16u);
  EXPECT_EQ(dma.transfer_cycles(4), 17u);
  EXPECT_EQ(dma.transfer_cycles(5), 18u);  // rounds up
  l2.store_u32(0x10, 0xdeadbeef);
  const auto c = dma.copy_in(0x10, 0x20, 4);
  EXPECT_EQ(c, 17u);
  EXPECT_EQ(tcdm.load_u32(0x20), 0xdeadbeefu);
  EXPECT_EQ(dma.total_bytes(), 4u);
  EXPECT_EQ(dma.transfers(), 1u);
}

class StreamedTiles : public ::testing::TestWithParam<int> {};

TEST_P(StreamedTiles, BitExactForAnyTileSize) {
  const int tile = GetParam();
  const auto data = ConvLayerData::random(small_spec(4), 0x5eed);
  const auto gold = data.golden();
  for (const bool dbuf : {false, true}) {
    const auto res = run_conv_streamed(data, ConvVariant::kXpulpNN_HwQ,
                                       sim::CoreConfig::extended(), tile, dbuf);
    ASSERT_EQ(res.tiles, 16 / tile);
    for (int i = 0; i < gold.elems(); ++i) {
      ASSERT_EQ(res.output.flat(i), gold.flat(i)) << "tile=" << tile;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TileSizes, StreamedTiles,
                         ::testing::Values(2, 4, 8, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(StreamedConv, MatchesResidentKernelCycles) {
  // Per-tile compute sums to roughly the resident kernel (the channel loop
  // is just split; only per-tile setup is added).
  const auto data = ConvLayerData::random(small_spec(4), 3);
  const auto resident = kernels::run_conv_layer(
      data, ConvVariant::kXpulpNN_HwQ, sim::CoreConfig::extended());
  const auto streamed =
      run_conv_streamed(data, ConvVariant::kXpulpNN_HwQ,
                        sim::CoreConfig::extended(), 8);
  EXPECT_NEAR(static_cast<double>(streamed.compute_cycles),
              static_cast<double>(resident.perf.cycles),
              0.15 * static_cast<double>(resident.perf.cycles));
}

TEST(StreamedConv, DoubleBufferingHidesDmaTime) {
  // A DMA-heavy fully-connected layer (many weight bytes per MAC) at 1
  // byte/cycle: the ping-pong scheme must hide most of the transfer time.
  const auto fc = kernels::LinearLayerData::random(512, 64, 4, 9);
  const auto data = fc.as_conv();
  const auto serial = run_conv_streamed(data, ConvVariant::kXpulpNN_HwQ,
                                        sim::CoreConfig::extended(), 16,
                                        /*double_buffered=*/false,
                                        /*dma_bytes_per_cycle=*/1);
  const auto dbuf = run_conv_streamed(data, ConvVariant::kXpulpNN_HwQ,
                                      sim::CoreConfig::extended(), 16,
                                      /*double_buffered=*/true,
                                      /*dma_bytes_per_cycle=*/1);
  // Same work, same transfers.
  EXPECT_EQ(serial.compute_cycles, dbuf.compute_cycles);
  EXPECT_EQ(serial.dma_cycles, dbuf.dma_cycles);
  EXPECT_GT(serial.dma_cycles, serial.compute_cycles / 4);  // DMA matters
  EXPECT_LT(dbuf.makespan, serial.makespan);
  EXPECT_GT(dbuf.overlap_efficiency(), 0.2);
  // Output identical and correct.
  const auto gold = fc.golden();
  for (int i = 0; i < gold.elems(); ++i) {
    ASSERT_EQ(dbuf.output.flat(i), gold.flat(i));
  }
}

TEST(StreamedConv, MakespanNeverBeatsComputeAlone) {
  const auto data = ConvLayerData::random(small_spec(2), 4);
  const auto res = run_conv_streamed(data, ConvVariant::kXpulpNN_HwQ,
                                     sim::CoreConfig::extended(), 4);
  EXPECT_GE(res.makespan, res.compute_cycles);
  EXPECT_LE(res.makespan, res.compute_cycles + res.dma_cycles);
}

TEST(StreamedConv, RejectsBadTiling) {
  const auto data = ConvLayerData::random(small_spec(4), 5);
  EXPECT_THROW(run_conv_streamed(data, ConvVariant::kXpulpNN_HwQ,
                                 sim::CoreConfig::extended(), 5),
               SimError);  // 5 does not divide 16
  EXPECT_THROW(run_conv_streamed(data, ConvVariant::kXpulpNN_HwQ,
                                 sim::CoreConfig::extended(), 0),
               SimError);
}

}  // namespace
}  // namespace xpulp::soc
