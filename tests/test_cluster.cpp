// Cluster model: bank arbitration, event-driven multi-core execution, and
// the row-partitioned parallel convolution.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/parallel_conv.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::cluster {
namespace {

namespace r = xasm::reg;
using kernels::ConvLayerData;
using kernels::ConvVariant;

TEST(BankArbiter, NoConflictOnDistinctBanks) {
  BankArbiter arb(4);
  EXPECT_EQ(arb.access(0, 10, 0x00), 0u);  // bank 0
  EXPECT_EQ(arb.access(1, 10, 0x04), 0u);  // bank 1
  EXPECT_EQ(arb.access(2, 10, 0x08), 0u);  // bank 2
  EXPECT_EQ(arb.conflicts(), 0u);
}

TEST(BankArbiter, SameBankSameCycleStalls) {
  BankArbiter arb(4);
  EXPECT_EQ(arb.access(0, 10, 0x00), 0u);
  EXPECT_EQ(arb.access(1, 10, 0x10), 1u);  // 0x10 -> bank 0 again
  EXPECT_EQ(arb.conflicts(), 1u);
  // A third core in the same cycle queues behind both.
  EXPECT_EQ(arb.access(2, 10, 0x20), 2u);
  EXPECT_EQ(arb.conflicts(), 2u);
}

TEST(BankArbiter, SameCoreBackToBackIsFree) {
  BankArbiter arb(4);
  EXPECT_EQ(arb.access(0, 10, 0x00), 0u);
  EXPECT_EQ(arb.access(0, 10, 0x10), 0u);  // same core re-uses its port
  EXPECT_EQ(arb.access(0, 11, 0x00), 0u);
  EXPECT_EQ(arb.conflicts(), 0u);
}

TEST(BankArbiter, WordInterleaving) {
  BankArbiter arb(8);
  // Consecutive words land in consecutive banks.
  for (u32 w = 0; w < 8; ++w) {
    EXPECT_EQ(arb.access(0, 5, w * 4), 0u);
  }
  EXPECT_EQ(arb.conflicts(), 0u);
}

TEST(Cluster, IndependentProgramsRunToCompletion) {
  ClusterConfig cfg;
  cfg.num_cores = 4;
  Cluster cluster(cfg);
  std::vector<xasm::Program> progs;
  for (int c = 0; c < 4; ++c) {
    xasm::Assembler a(static_cast<addr_t>(c) * 0x1000);
    a.li(r::a0, c + 1);
    a.li(r::t0, 100 * (c + 1));  // different runtimes per core
    auto loop = a.here();
    a.addi(r::t0, r::t0, -1);
    a.bne(r::t0, r::zero, loop);
    a.li(r::t1, 0x30000 + c * 4);
    a.sw(r::a0, r::t1, 0);
    a.ecall();
    progs.push_back(a.finish());
  }
  cluster.load(progs);
  const auto stats = cluster.run();
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(cluster.memory().load_u32(0x30000 + static_cast<u32>(c) * 4),
              static_cast<u32>(c + 1));
  }
  // Makespan is the slowest core; core 3 loops 4x longer than core 0.
  EXPECT_EQ(stats.makespan, stats.core_cycles[3]);
  EXPECT_GT(stats.core_cycles[3], stats.core_cycles[0] * 3);
}

TEST(Cluster, ConflictsAriseOnSharedHotBank) {
  // All cores hammer the same word: every cycle only one proceeds.
  ClusterConfig cfg;
  cfg.num_cores = 4;
  Cluster cluster(cfg);
  std::vector<xasm::Program> progs;
  for (int c = 0; c < 4; ++c) {
    xasm::Assembler a(static_cast<addr_t>(c) * 0x1000);
    a.li(r::s0, 0x30000);
    for (int i = 0; i < 64; ++i) a.lw(r::a0, r::s0, 0);
    a.ecall();
    progs.push_back(a.finish());
  }
  cluster.load(progs);
  const auto stats = cluster.run();
  EXPECT_GT(stats.bank_conflicts, 100u);
  EXPECT_GT(stats.conflict_rate(), 0.3);
}

std::vector<xasm::Program> conflict_programs(int cores) {
  std::vector<xasm::Program> progs;
  for (int c = 0; c < cores; ++c) {
    xasm::Assembler a(static_cast<addr_t>(c) * 0x1000);
    a.li(r::s0, 0x30000);
    for (int i = 0; i < 32; ++i) a.lw(r::a0, r::s0, 0);
    a.li(r::t0, 50 * (c + 1));
    auto loop = a.here();
    a.addi(r::t0, r::t0, -1);
    a.bne(r::t0, r::zero, loop);
    a.ecall();
    progs.push_back(a.finish());
  }
  return progs;
}

TEST(Cluster, SecondRunOnSameInstanceIsIdentical) {
  // Regression: load() used to keep the previous run's per-core cycle
  // counters and the arbiter's bank bookings, so a second run on the same
  // instance reported cumulative core cycles and phantom cascaded
  // conflicts. A reloaded cluster must behave exactly like a fresh one.
  ClusterConfig cfg;
  cfg.num_cores = 4;
  Cluster cluster(cfg);
  const auto progs = conflict_programs(4);

  cluster.load(progs);
  const auto first = cluster.run();
  cluster.load(progs);
  const auto second = cluster.run();

  EXPECT_EQ(second.makespan, first.makespan);
  EXPECT_EQ(second.core_cycles, first.core_cycles);
  EXPECT_EQ(second.bank_conflicts, first.bank_conflicts);
  EXPECT_EQ(second.data_accesses, first.data_accesses);

  // And identical to a run on a brand-new instance.
  Cluster fresh(cfg);
  fresh.load(progs);
  const auto baseline = fresh.run();
  EXPECT_EQ(second.makespan, baseline.makespan);
  EXPECT_EQ(second.core_cycles, baseline.core_cycles);
  EXPECT_EQ(second.bank_conflicts, baseline.bank_conflicts);
}

TEST(Cluster, AccessHookUninstalledAfterGuestFault) {
  // Regression: a guest fault escaping run() used to leave the arbiter
  // access hook installed on the shared memory, with the active-core latch
  // pointing at the faulted core — every later host-side access_cycles
  // call would keep booking banks.
  ClusterConfig cfg;
  cfg.num_cores = 2;
  Cluster cluster(cfg);

  std::vector<xasm::Program> progs;
  for (int c = 0; c < 2; ++c) {
    xasm::Assembler a(static_cast<addr_t>(c) * 0x1000);
    if (c == 1) {
      a.li(r::s0, -4);  // 0xfffffffc: far outside the SRAM
      a.lw(r::a0, r::s0, 0);
    }
    a.ecall();
    progs.push_back(a.finish());
  }
  cluster.load(progs);
  EXPECT_THROW(cluster.run(), MemoryFault);

  const u64 accesses_after = cluster.stats_since(0, 0).data_accesses;
  (void)cluster.memory().access_cycles(0x30000, 4, false);
  EXPECT_EQ(cluster.stats_since(0, 0).data_accesses, accesses_after)
      << "arbiter hook still installed after a faulting run";

  // The instance stays usable: reload with healthy programs and run.
  cluster.load(conflict_programs(2));
  const auto stats = cluster.run();
  EXPECT_GT(stats.makespan, 0u);
}

TEST(Cluster, RejectsBadConfigs) {
  ClusterConfig cfg;
  cfg.num_cores = 0;
  EXPECT_THROW(Cluster{cfg}, SimError);
  Cluster ok;
  EXPECT_THROW(ok.load({}), SimError);  // wrong program count
}

struct ParCase {
  unsigned bits;
  int cores;
};

class ParallelConv : public ::testing::TestWithParam<ParCase> {};

TEST_P(ParallelConv, BitExactAndFaster) {
  const auto [bits, cores] = GetParam();
  qnn::ConvSpec spec;
  spec.in_h = spec.in_w = 8;
  spec.in_c = 16;
  spec.out_c = 8;
  spec.in_bits = spec.w_bits = spec.out_bits = bits;
  const auto data = ConvLayerData::random(spec, 0xc1u + bits);
  const auto gold = data.golden();
  const ConvVariant v = (bits == 8) ? ConvVariant::kXpulpV2_8b
                                    : ConvVariant::kXpulpNN_HwQ;

  ClusterConfig cfg;
  cfg.num_cores = cores;
  const auto res = run_parallel_conv(data, v, cfg);
  int bad = 0;
  for (int i = 0; i < gold.elems(); ++i) {
    if (gold.flat(i) != res.output.flat(i)) ++bad;
  }
  EXPECT_EQ(bad, 0);

  if (cores > 1) {
    ClusterConfig one;
    one.num_cores = 1;
    const auto single = run_parallel_conv(data, v, one);
    const double speedup = static_cast<double>(single.stats.makespan) /
                           static_cast<double>(res.stats.makespan);
    // Near-linear row partitioning, capped by the number of output rows
    // (extra cores idle once every row has an owner).
    const int effective = std::min(cores, spec.out_h());
    EXPECT_GT(speedup, 0.7 * effective);
    EXPECT_LT(res.stats.conflict_rate(), 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelConv,
    ::testing::Values(ParCase{4, 1}, ParCase{4, 2}, ParCase{4, 4},
                      ParCase{4, 8}, ParCase{2, 4}, ParCase{8, 4},
                      ParCase{2, 8}, ParCase{4, 16}),
    [](const ::testing::TestParamInfo<ParCase>& info) {
      return "b" + std::to_string(info.param.bits) + "_c" +
             std::to_string(info.param.cores);
    });

TEST(ParallelConv, UnevenRowSplitCoversAllRows) {
  // 8 output rows over 3 cores: shares 3/3/2.
  qnn::ConvSpec spec;
  spec.in_h = spec.in_w = 8;
  spec.in_c = 16;
  spec.out_c = 4;
  spec.in_bits = spec.w_bits = spec.out_bits = 4;
  const auto data = ConvLayerData::random(spec, 9);
  ClusterConfig cfg;
  cfg.num_cores = 3;
  const auto res = run_parallel_conv(data, ConvVariant::kXpulpNN_HwQ, cfg);
  const auto gold = data.golden();
  for (int i = 0; i < gold.elems(); ++i) {
    ASSERT_EQ(res.output.flat(i), gold.flat(i)) << i;
  }
}

TEST(ParallelConv, MoreCoresThanRows) {
  // 4 output rows over 8 cores: four cores idle, still bit-exact.
  qnn::ConvSpec spec;
  spec.in_h = spec.in_w = 4;
  spec.in_c = 16;
  spec.out_c = 4;
  spec.in_bits = spec.w_bits = spec.out_bits = 4;
  const auto data = ConvLayerData::random(spec, 10);
  ClusterConfig cfg;
  cfg.num_cores = 8;
  const auto res = run_parallel_conv(data, ConvVariant::kXpulpNN_HwQ, cfg);
  const auto gold = data.golden();
  for (int i = 0; i < gold.elems(); ++i) {
    ASSERT_EQ(res.output.flat(i), gold.flat(i));
  }
}

}  // namespace
}  // namespace xpulp::cluster
