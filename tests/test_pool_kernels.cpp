// Pooling kernels: sub-byte SIMD max/avg on the extended core vs the
// unpack/pool/repack path on the baseline, both bit-exact vs the reference.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernels/pool_gen.hpp"
#include "qnn/ref_layers.hpp"

namespace xpulp::kernels {
namespace {

qnn::Tensor random_tensor(qnn::Shape s, unsigned bits, u64 seed) {
  Rng rng(seed);
  qnn::Tensor t(s);
  for (int i = 0; i < t.elems(); ++i) {
    t.flat(i) = static_cast<i32>(rng.unsigned_bits(bits));
  }
  return t;
}

struct PoolCase {
  unsigned bits;
  PoolOp op;
  bool extended;
};

class Pool2x2 : public ::testing::TestWithParam<PoolCase> {};

TEST_P(Pool2x2, MatchesReference) {
  const auto [bits, op, extended] = GetParam();
  const auto in = random_tensor({8, 8, static_cast<int>(32 / bits) * 2}, bits,
                                bits * 7 + static_cast<int>(op));
  const auto cfg = extended ? sim::CoreConfig::extended()
                            : sim::CoreConfig::ri5cy();
  const auto res = run_pool2x2(in, bits, op, cfg);
  const auto gold = (op == PoolOp::kMax) ? qnn::maxpool2x2_ref(in)
                                         : qnn::avgpool2x2_ref(in);
  ASSERT_EQ(res.output.shape(), gold.shape());
  for (int i = 0; i < gold.elems(); ++i) {
    ASSERT_EQ(res.output.flat(i), gold.flat(i)) << "elem " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWidths, Pool2x2,
    ::testing::Values(PoolCase{8, PoolOp::kMax, true},
                      PoolCase{8, PoolOp::kAvg, true},
                      PoolCase{4, PoolOp::kMax, true},
                      PoolCase{4, PoolOp::kAvg, true},
                      PoolCase{2, PoolOp::kMax, true},
                      PoolCase{2, PoolOp::kAvg, true},
                      PoolCase{4, PoolOp::kMax, false},
                      PoolCase{4, PoolOp::kAvg, false},
                      PoolCase{2, PoolOp::kMax, false},
                      PoolCase{8, PoolOp::kMax, false}),
    [](const ::testing::TestParamInfo<PoolCase>& info) {
      return std::string("b") + std::to_string(info.param.bits) +
             (info.param.op == PoolOp::kMax ? "_max" : "_avg") +
             (info.param.extended ? "_ext" : "_base");
    });

TEST(Pool2x2, SubByteSimdBeatsUnpackRepack) {
  const auto in = random_tensor({8, 8, 16}, 4, 33);
  const auto ext = run_pool2x2(in, 4, PoolOp::kMax, sim::CoreConfig::extended());
  const auto base = run_pool2x2(in, 4, PoolOp::kMax, sim::CoreConfig::ri5cy());
  EXPECT_GT(static_cast<double>(base.perf.cycles) /
                static_cast<double>(ext.perf.cycles),
            3.0);
}

TEST(Pool2x2, RejectsOddShapes) {
  const auto in = random_tensor({3, 4, 16}, 4, 1);
  EXPECT_THROW(run_pool2x2(in, 4, PoolOp::kMax, sim::CoreConfig::extended()),
               SimError);
  const auto bad_c = random_tensor({4, 4, 6}, 4, 1);  // 24 bits per pixel
  EXPECT_THROW(run_pool2x2(bad_c, 4, PoolOp::kMax, sim::CoreConfig::extended()),
               SimError);
}

}  // namespace
}  // namespace xpulp::kernels
