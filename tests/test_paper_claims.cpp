// Regression gate for the paper's headline claims, evaluated on the actual
// benchmark layer (16x16x32 input, 64 3x3x32 filters). If a refactor moves
// any reproduced number out of its accepted band, this suite fails --
// keeping EXPERIMENTS.md honest. Bands are centered on the paper's values
// with room for the model-vs-RTL differences documented there.
#include <gtest/gtest.h>

#include "armv7e/cmsis_conv.hpp"
#include "cluster/parallel_conv.hpp"
#include "kernels/conv_layer.hpp"
#include "power/power_model.hpp"

namespace xpulp {
namespace {

using kernels::ConvLayerData;
using kernels::ConvVariant;

struct LayerRun {
  cycles_t cycles;
  double soc_mw;
  double gmac_s_w;
};

LayerRun run(unsigned bits, ConvVariant v, const sim::CoreConfig& cfg) {
  const auto data = ConvLayerData::random(qnn::ConvSpec::paper_layer(bits), 7);
  const auto res = kernels::run_conv_layer(data, v, cfg);
  EXPECT_EQ(res.output, data.golden());
  const auto p =
      power::estimate_power(res.perf, res.activity, res.mem_stats, cfg);
  return {res.perf.cycles, p.soc_mw(),
          power::gmac_per_s_per_w(res.macs, res.perf.cycles, p.soc_mw())};
}

// One static evaluation shared by all claims (the layer runs take ~2 s).
struct Fixture {
  LayerRun ext8 = run(8, ConvVariant::kXpulpV2_8b, sim::CoreConfig::extended());
  LayerRun ext4 = run(4, ConvVariant::kXpulpNN_HwQ, sim::CoreConfig::extended());
  LayerRun ext2 = run(2, ConvVariant::kXpulpNN_HwQ, sim::CoreConfig::extended());
  LayerRun sw4 = run(4, ConvVariant::kXpulpNN_SwQ, sim::CoreConfig::extended());
  LayerRun sw2 = run(2, ConvVariant::kXpulpNN_SwQ, sim::CoreConfig::extended());
  LayerRun base4 = run(4, ConvVariant::kXpulpV2_Sub, sim::CoreConfig::ri5cy());
  LayerRun base2 = run(2, ConvVariant::kXpulpV2_Sub, sim::CoreConfig::ri5cy());
};

const Fixture& fx() {
  static Fixture f;
  return f;
}

double ratio(cycles_t a, cycles_t b) {
  return static_cast<double>(a) / static_cast<double>(b);
}

TEST(PaperClaims, SubByteKernelSpeedupVsRi5cy) {
  // Paper: 5.3x (4-bit) and 8.9x (2-bit).
  EXPECT_NEAR(ratio(fx().base4.cycles, fx().ext4.cycles), 5.3, 0.5);
  EXPECT_NEAR(ratio(fx().base2.cycles, fx().ext2.cycles), 8.9, 0.9);
}

TEST(PaperClaims, PvQntKernelSpeedup) {
  // Paper: 1.21x (4-bit) and 1.16x (2-bit).
  EXPECT_NEAR(ratio(fx().sw4.cycles, fx().ext4.cycles), 1.21, 0.10);
  EXPECT_NEAR(ratio(fx().sw2.cycles, fx().ext2.cycles), 1.16, 0.08);
}

TEST(PaperClaims, NearLinearSubByteScaling) {
  // Paper Fig. 6: "almost linear" scaling vs the 8-bit kernel.
  EXPECT_GT(ratio(fx().ext8.cycles, fx().ext4.cycles), 1.6);
  EXPECT_LE(ratio(fx().ext8.cycles, fx().ext4.cycles), 2.0);
  EXPECT_GT(ratio(fx().ext8.cycles, fx().ext2.cycles), 3.0);
  EXPECT_LE(ratio(fx().ext8.cycles, fx().ext2.cycles), 4.0);
}

TEST(PaperClaims, EnergyEfficiencyGainAndPeak) {
  // Paper: up to 9x vs the baseline, peak 279 GMAC/s/W, 8-bit unchanged.
  EXPECT_NEAR(fx().ext2.gmac_s_w / fx().base2.gmac_s_w, 9.0, 1.0);
  EXPECT_NEAR(fx().ext2.gmac_s_w, 279.0, 40.0);
  const auto base8 = run(8, ConvVariant::kXpulpV2_8b, sim::CoreConfig::ri5cy());
  EXPECT_NEAR(fx().ext8.gmac_s_w / base8.gmac_s_w, 1.0, 0.05);
}

TEST(PaperClaims, OrderOfMagnitudeVsArmMcus) {
  const auto data = ConvLayerData::random(qnn::ConvSpec::paper_layer(2), 7);
  const auto m4 = armv7e::run_conv_layer_arm(data, armv7e::ArmModel::kCortexM4);
  const auto m7 = armv7e::run_conv_layer_arm(data, armv7e::ArmModel::kCortexM7);
  EXPECT_EQ(m4.output, data.golden());
  // Cycles: ~an order of magnitude vs the M4, severalfold vs the M7.
  EXPECT_GT(ratio(m4.perf.cycles, fx().ext2.cycles), 8.0);
  EXPECT_GT(ratio(m7.perf.cycles, fx().ext2.cycles), 4.0);
  // Efficiency: two orders of magnitude (paper: 103x / 354x).
  const auto l4 = power::stm32l4_platform();
  const auto h7 = power::stm32h7_platform();
  const double m4_eff = static_cast<double>(m4.macs) * l4.freq_hz /
                        m4.perf.cycles / (l4.power_mw * 1e-3) * 1e-9;
  const double m7_eff = static_cast<double>(m7.macs) * h7.freq_hz /
                        m7.perf.cycles / (h7.power_mw * 1e-3) * 1e-9;
  EXPECT_GT(fx().ext2.gmac_s_w / m4_eff, 100.0);
  EXPECT_GT(fx().ext2.gmac_s_w / m7_eff, 250.0);
}

TEST(PaperClaims, AreaAndPowerOverheads) {
  // Paper: 11.1% core area overhead and 5.9% core power overhead (PM).
  const auto t = power::area_table();
  EXPECT_NEAR((t[0].ext_pm_um2 / t[0].ri5cy_um2 - 1) * 100, 11.1, 1.0);
  const auto base8 = run(8, ConvVariant::kXpulpV2_8b, sim::CoreConfig::ri5cy());
  EXPECT_NEAR(fx().ext8.soc_mw / base8.soc_mw, 1.018, 0.02);  // SoC: +1.8%
}

TEST(PaperClaims, ClusterScalesNearLinearly) {
  // Extension claim recorded in EXPERIMENTS.md: >= 7.3x on 8 cores.
  const auto data = ConvLayerData::random(qnn::ConvSpec::paper_layer(2), 7);
  cluster::ClusterConfig cfg;
  cfg.num_cores = 8;
  const auto par = cluster::run_parallel_conv(
      data, ConvVariant::kXpulpNN_HwQ, cfg);
  EXPECT_EQ(par.output, data.golden());
  EXPECT_GT(ratio(fx().ext2.cycles, par.stats.makespan), 7.3);
  EXPECT_LT(par.stats.conflict_rate(), 0.10);
}

}  // namespace
}  // namespace xpulp
