// Encoder/decoder round-trip over the whole instruction set, plus golden
// encodings for standard RV32I words (cross-checked against riscv-tools
// output) to pin our base-ISA encoder to the official layout.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "isa/decoder.hpp"
#include "isa/encoding.hpp"

namespace xpulp::isa {
namespace {

using M = Mnemonic;

struct Sample {
  Instr in;
  std::string label;
};

Instr mk(M op, u8 rd, u8 rs1, u8 rs2, i32 imm = 0, u8 imm2 = 0,
         SimdFmt fmt = SimdFmt::kNone) {
  Instr i;
  i.op = op;
  i.rd = rd;
  i.rs1 = rs1;
  i.rs2 = rs2;
  i.imm = imm;
  i.imm2 = imm2;
  i.fmt = fmt;
  return i;
}

std::vector<Sample> all_samples() {
  std::vector<Sample> v;
  auto add = [&](Instr in, const char* label) { v.push_back({in, label}); };

  // RV32I / M R-type ops.
  for (M op : {M::kAdd, M::kSub, M::kSll, M::kSlt, M::kSltu, M::kXor,
               M::kSrl, M::kSra, M::kOr, M::kAnd, M::kMul, M::kMulh,
               M::kMulhsu, M::kMulhu, M::kDiv, M::kDivu, M::kRem, M::kRemu}) {
    add(mk(op, 5, 6, 7), "rtype");
    add(mk(op, 31, 0, 15), "rtype-edge");
  }
  // I-type ALU.
  for (M op : {M::kAddi, M::kSlti, M::kSltiu, M::kXori, M::kOri, M::kAndi}) {
    add(mk(op, 1, 2, 0, 2047), "imm-max");
    add(mk(op, 1, 2, 0, -2048), "imm-min");
    add(mk(op, 1, 2, 0, 0), "imm-zero");
  }
  for (M op : {M::kSlli, M::kSrli, M::kSrai}) {
    add(mk(op, 3, 4, 0, 0), "sh0");
    add(mk(op, 3, 4, 0, 31), "sh31");
  }
  // Loads/stores.
  for (M op : {M::kLb, M::kLh, M::kLw, M::kLbu, M::kLhu}) {
    add(mk(op, 8, 9, 0, -4), "load");
  }
  for (M op : {M::kSb, M::kSh, M::kSw}) {
    add(mk(op, 0, 9, 10, 2047), "store");
    add(mk(op, 0, 9, 10, -2048), "store-min");
  }
  // Branches / jumps (even offsets only).
  for (M op : {M::kBeq, M::kBne, M::kBlt, M::kBge, M::kBltu, M::kBgeu}) {
    add(mk(op, 0, 3, 4, 4094), "branch-max");
    add(mk(op, 0, 3, 4, -4096), "branch-min");
  }
  add(mk(M::kJal, 1, 0, 0, 0xffffe), "jal");
  add(mk(M::kJal, 0, 0, 0, -1048576), "jal-min");
  add(mk(M::kJalr, 1, 5, 0, -2), "jalr");
  add(mk(M::kLui, 7, 0, 0, static_cast<i32>(0xabcde000u)), "lui");
  add(mk(M::kAuipc, 7, 0, 0, 0x7f000), "auipc");
  // System.
  add(mk(M::kEcall, 0, 0, 0), "ecall");
  add(mk(M::kEbreak, 0, 0, 0), "ebreak");
  add(mk(M::kFence, 0, 0, 0), "fence");
  add(mk(M::kCsrrw, 1, 2, 0, 0xB00), "csrrw");
  add(mk(M::kCsrrs, 1, 2, 0, 0xFFF), "csrrs-max");
  add(mk(M::kCsrrc, 1, 2, 0, 0x340), "csrrc");
  add(mk(M::kCsrrwi, 1, 0, 0, 0xB02, 31), "csrrwi");
  add(mk(M::kCsrrsi, 1, 0, 0, 0xB02, 0), "csrrsi");
  add(mk(M::kCsrrci, 1, 0, 0, 0xB02, 17), "csrrci");

  // XpulpV2 memory.
  for (M op : {M::kPLbPostImm, M::kPLhPostImm, M::kPLwPostImm,
               M::kPLbuPostImm, M::kPLhuPostImm}) {
    add(mk(op, 10, 11, 0, 4), "lpost");
    add(mk(op, 10, 11, 0, -8), "lpost-neg");
  }
  for (M op : {M::kPSbPostImm, M::kPShPostImm, M::kPSwPostImm}) {
    add(mk(op, 0, 11, 12, 4), "spost");
  }
  for (M op : {M::kPLbPostReg, M::kPLhPostReg, M::kPLwPostReg,
               M::kPLbuPostReg, M::kPLhuPostReg, M::kPLbRegReg,
               M::kPLhRegReg, M::kPLwRegReg, M::kPLbuRegReg,
               M::kPLhuRegReg}) {
    add(mk(op, 10, 11, 12), "lreg");
  }
  for (M op : {M::kPSbPostReg, M::kPShPostReg, M::kPSwPostReg,
               M::kPSbRegReg, M::kPShRegReg, M::kPSwRegReg}) {
    add(mk(op, 13, 11, 12), "sreg");  // rd field carries the inc/idx reg
  }
  // XpulpV2 scalar.
  for (M op : {M::kPAbs, M::kPExths, M::kPExthz, M::kPExtbs, M::kPExtbz,
               M::kPCnt, M::kPFf1, M::kPFl1, M::kPClb}) {
    add(mk(op, 5, 6, 0), "unary");
  }
  for (M op : {M::kPMin, M::kPMinu, M::kPMax, M::kPMaxu, M::kPRor,
               M::kPMac, M::kPMsu}) {
    add(mk(op, 5, 6, 7), "binary");
  }
  add(mk(M::kPClip, 5, 6, 0, 8), "clip");
  add(mk(M::kPClipu, 5, 6, 0, 31), "clipu");
  for (M op : {M::kPExtract, M::kPExtractu, M::kPInsert, M::kPBclr,
               M::kPBset}) {
    add(mk(op, 5, 6, 0, /*Is2=*/12, /*Is3=*/7), "bitmanip");
    add(mk(op, 5, 6, 0, 0, 31), "bitmanip-wide");
  }
  // Hardware loops.
  add(mk(M::kLpStarti, 0, 0, 0, 64, 0), "lp.starti");
  add(mk(M::kLpEndi, 0, 0, 0, 128, 1), "lp.endi");
  add(mk(M::kLpCount, 0, 9, 0, 0, 0), "lp.count");
  add(mk(M::kLpCounti, 0, 0, 0, 4095, 1), "lp.counti");
  add(mk(M::kLpSetup, 0, 9, 0, 40, 0), "lp.setup");
  add(mk(M::kLpSetupi, 0, 31, 0, 40, 1), "lp.setupi");

  // SIMD over every format.
  for (SimdFmt f : {SimdFmt::kB, SimdFmt::kBSc, SimdFmt::kH, SimdFmt::kHSc,
                    SimdFmt::kN, SimdFmt::kNSc, SimdFmt::kC, SimdFmt::kCSc}) {
    for (M op : {M::kPvAdd, M::kPvSub, M::kPvAvg, M::kPvAvgu, M::kPvMax,
                 M::kPvMaxu, M::kPvMin, M::kPvMinu, M::kPvSrl, M::kPvSra,
                 M::kPvSll, M::kPvAnd, M::kPvOr, M::kPvXor, M::kPvDotup,
                 M::kPvDotusp, M::kPvDotsp, M::kPvSdotup, M::kPvSdotusp,
                 M::kPvSdotsp}) {
      add(mk(op, 20, 21, 22, 0, 0, f), "simd");
    }
    add(mk(M::kPvAbs, 20, 21, 0, 0, 0, f), "simd-abs");  // unary: rs2 == 0
  }
  add(mk(M::kPvQnt, 20, 21, 22, 0, 0, SimdFmt::kN), "qnt.n");
  add(mk(M::kPvQnt, 20, 21, 22, 0, 0, SimdFmt::kC), "qnt.c");
  // Mixed virtual dot products: format-free (widths come from the mpc CSR
  // at run time), encoded with fmt == kNone.
  for (M op : {M::kPvMldotup, M::kPvMldotusp, M::kPvMldotsp, M::kPvMlsdotup,
               M::kPvMlsdotusp, M::kPvMlsdotsp}) {
    add(mk(op, 20, 21, 22), "mixed-dotp");
    add(mk(op, 31, 0, 15), "mixed-dotp-edge");
  }
  return v;
}

class RoundTrip : public ::testing::TestWithParam<Sample> {};

TEST_P(RoundTrip, EncodeDecodeIsIdentity) {
  const Instr& in = GetParam().in;
  const u32 word = encode(in);
  const Instr out = decode(word, /*pc=*/0x100);
  EXPECT_EQ(out.op, in.op) << GetParam().label;
  EXPECT_EQ(out.fmt, in.fmt);
  if (reads_rs1(in)) EXPECT_EQ(out.rs1, in.rs1);
  if (reads_rs2(in) || reads_rd(in)) {
    // Register fields must survive wherever they are meaningful.
    EXPECT_EQ(out.rs2, in.rs2);
  }
  if (writes_rd(in) || reads_rd(in)) EXPECT_EQ(out.rd, in.rd);
  EXPECT_EQ(out.imm, in.imm) << GetParam().label;
  EXPECT_EQ(out.imm2, in.imm2) << GetParam().label;
  EXPECT_EQ(out.size, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllInstructions, RoundTrip, ::testing::ValuesIn(all_samples()),
    [](const ::testing::TestParamInfo<Sample>& info) {
      std::string n{mnemonic_name(info.param.in.op)};
      for (char& c : n) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n + "_" + std::to_string(info.index);
    });

// Golden encodings for base-ISA words (verified against GNU as output).
TEST(Encoding, GoldenRv32iWords) {
  EXPECT_EQ(encode(mk(M::kAddi, 1, 2, 0, 5)), 0x00510093u);   // addi ra,sp,5
  EXPECT_EQ(encode(mk(M::kAdd, 3, 4, 5)), 0x005201b3u);       // add gp,tp,t0
  EXPECT_EQ(encode(mk(M::kLui, 1, 0, 0, 0x12345000)), 0x123450b7u);
  EXPECT_EQ(encode(mk(M::kLw, 10, 2, 0, 8)), 0x00812503u);    // lw a0,8(sp)
  EXPECT_EQ(encode(mk(M::kSw, 0, 2, 10, 12)), 0x00a12623u);   // sw a0,12(sp)
  EXPECT_EQ(encode(mk(M::kJal, 1, 0, 0, 16)), 0x010000efu);   // jal ra,+16
  EXPECT_EQ(encode(mk(M::kBeq, 0, 1, 2, -4)), 0xfe208ee3u);   // beq ra,sp,-4
  EXPECT_EQ(encode(mk(M::kEcall, 0, 0, 0)), 0x00000073u);
  EXPECT_EQ(encode(mk(M::kEbreak, 0, 0, 0)), 0x00100073u);
  EXPECT_EQ(encode(mk(M::kMul, 5, 6, 7)), 0x027302b3u);       // mul t0,t1,t2
  EXPECT_EQ(encode(mk(M::kSrai, 1, 2, 0, 3)), 0x40315093u);   // srai ra,sp,3
}

TEST(Encoding, RangeChecksThrow) {
  EXPECT_THROW(encode(mk(M::kAddi, 1, 2, 0, 2048)), AsmError);
  EXPECT_THROW(encode(mk(M::kAddi, 1, 2, 0, -2049)), AsmError);
  EXPECT_THROW(encode(mk(M::kSlli, 1, 2, 0, 32)), AsmError);
  EXPECT_THROW(encode(mk(M::kBeq, 0, 1, 2, 3)), AsmError);      // odd offset
  EXPECT_THROW(encode(mk(M::kBeq, 0, 1, 2, 4096)), AsmError);   // too far
  EXPECT_THROW(encode(mk(M::kJal, 1, 0, 0, 1 << 20)), AsmError);
  EXPECT_THROW(encode(mk(M::kLpSetupi, 0, 32, 0, 8, 0)), AsmError);
  EXPECT_THROW(encode(mk(M::kPvQnt, 1, 2, 3, 0, 0, SimdFmt::kB)), AsmError);
  EXPECT_THROW(encode(mk(M::kPvQnt, 1, 2, 3, 0, 0, SimdFmt::kNSc)), AsmError);
  EXPECT_THROW(encode(Instr{}), AsmError);
}

TEST(Decoder, IllegalEncodingsThrow) {
  EXPECT_THROW(decode(0xffffffffu, 0), IllegalInstruction);  // opcode 0x7f
  // LOAD with funct3 == 3 (no such width).
  EXPECT_THROW(decode(0x00003003u | (3u << 12), 0), IllegalInstruction);
  // SYSTEM with a non-ecall/ebreak funct3==0 payload.
  EXPECT_THROW(decode(0x00200073u, 0), IllegalInstruction);
  // SIMD with an unused funct7 slot.
  EXPECT_THROW(decode(enc_r(kOpPulpSimd, 0, 63, 1, 2, 3), 0),
               IllegalInstruction);
  // Scalar-PULP subclass 101 is unallocated.
  EXPECT_THROW(decode(enc_r(kOpPulpScalar, 0b101, 0, 1, 2, 3), 0),
               IllegalInstruction);
  // Mixed dot products reserve every nonzero funct3 slot (no .sc or
  // format variants: the widths live in the mpc CSR, not the encoding).
  for (const u32 f7 : {27u, 28u, 29u, 33u, 34u, 35u}) {
    ASSERT_NO_THROW(decode(enc_r(kOpPulpSimd, 0, f7, 1, 2, 3), 0));
    for (u32 f3 = 1; f3 < 8; ++f3) {
      EXPECT_THROW(decode(enc_r(kOpPulpSimd, f3, f7, 1, 2, 3), 0),
                   IllegalInstruction)
          << "funct7=" << f7 << " funct3=" << f3;
    }
  }
}

TEST(Decoder, ReportsFaultingPcAndWord) {
  try {
    decode(0xffffffffu, 0x1234);
    FAIL() << "expected IllegalInstruction";
  } catch (const IllegalInstruction& e) {
    EXPECT_EQ(e.pc(), 0x1234u);
    EXPECT_EQ(e.raw(), 0xffffffffu);
  }
}

}  // namespace
}  // namespace xpulp::isa
