// ARM disassembler output checks.
#include <gtest/gtest.h>

#include "armv7e/arm_asm.hpp"
#include "armv7e/arm_disasm.hpp"

namespace xpulp::armv7e {
namespace {

TEST(ArmDisasm, RegisterNames) {
  EXPECT_EQ(arm_reg_name(0), "r0");
  EXPECT_EQ(arm_reg_name(12), "r12");
  EXPECT_EQ(arm_reg_name(13), "sp");
  EXPECT_EQ(arm_reg_name(14), "lr");
  EXPECT_EQ(arm_reg_name(15), "pc");
}

TEST(ArmDisasm, CoreForms) {
  ArmAsm a;
  a.mov_imm(1, 0x12);
  a.add(2, 1, 3);
  a.add_imm(2, 2, 4);
  a.smlad(0, 1, 2, 0);
  a.sxtb16_ror8(5, 6);
  a.ldr_post(2, 1, 4);
  a.str(3, 13, 8);
  a.cmp_imm(2, 0);
  auto loop = a.here();
  a.b(AOp::kBne, loop);
  a.usat(7, 4, 8);
  a.ubfx(5, 4, 8, 8);
  a.bx_lr();
  const auto prog = a.finish();

  EXPECT_EQ(arm_disassemble(prog[0]), "movw r1, #18");
  EXPECT_EQ(arm_disassemble(prog[1]), "add r2, r1, r3");
  EXPECT_EQ(arm_disassemble(prog[2]), "add r2, r2, #4");
  EXPECT_EQ(arm_disassemble(prog[3]), "smlad r0, r1, r2, r0");
  EXPECT_EQ(arm_disassemble(prog[4]), "sxtb16,ror#8 r5, r6");
  EXPECT_EQ(arm_disassemble(prog[5]), "ldr r2, [r1], #4");
  EXPECT_EQ(arm_disassemble(prog[6]), "str r3, [sp, #8]");
  EXPECT_EQ(arm_disassemble(prog[7]), "cmp r2, #0");
  EXPECT_EQ(arm_disassemble(prog[8]), "bne @8");
  EXPECT_EQ(arm_disassemble(prog[9]), "usat r7, #8, r4");
  EXPECT_EQ(arm_disassemble(prog[10]), "ubfx r5, r4, #8, #8");
  EXPECT_EQ(arm_disassemble(prog[11]), "bx lr");
}

TEST(ArmDisasm, EveryOpHasARendering) {
  // Sanity: no op renders to an empty or "?" string.
  for (u16 op = 0; op <= static_cast<u16>(AOp::kHalt); ++op) {
    AInstr in;
    in.op = static_cast<AOp>(op);
    const auto s = arm_disassemble(in);
    EXPECT_FALSE(s.empty());
    EXPECT_NE(s[0], '?');
  }
}

}  // namespace
}  // namespace xpulp::armv7e
