// Mixed-precision virtual-SIMD kernel tests: the kXpulpNN_Mixed conv and
// linear kernels must be bit-exact against the reference layers for every
// mpc operand pair (8x4, 8x2, 4x2) on all three dispatch modes (reference
// interpreter, fast path, superblock), the mixed-op counters must attribute
// every dot product to the selector the kernel programmed, and the
// reserved selector must trap rather than compute garbage.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "kernels/conv_layer.hpp"
#include "kernels/linear.hpp"
#include "sim_test_util.hpp"

namespace xpulp::kernels {
namespace {

namespace r = xasm::reg;

sim::CoreConfig dispatch_cfg(bool reference, bool superblock) {
  sim::CoreConfig cfg = sim::CoreConfig::extended();
  cfg.reference_dispatch = reference;
  cfg.superblock = superblock;
  return cfg;
}

struct MixedCase {
  unsigned in_bits, w_bits, out_bits;
  int h, w, cin, cout, k, pad;
  u64 seed;
};

qnn::ConvSpec to_spec(const MixedCase& c) {
  qnn::ConvSpec s;
  s.in_h = c.h;
  s.in_w = c.w;
  s.in_c = c.cin;
  s.out_c = c.cout;
  s.k_h = s.k_w = c.k;
  s.pad = c.pad;
  s.in_bits = c.in_bits;
  s.w_bits = c.w_bits;
  s.out_bits = c.out_bits;
  return s;
}

// Geometry notes: in_c * in_bits must be word-aligned; sub-byte outputs
// need every accumulator inside int16, so those cases use 1x1 filters or
// narrow operands (4x2) where the worst-case products stay small.
std::vector<MixedCase> mixed_grid() {
  return {
      // 8-bit outputs (scale requantization): paper-shaped 3x3 stacks.
      {8, 4, 8, 6, 6, 8, 4, 3, 1, 11},
      {8, 2, 8, 6, 6, 8, 4, 3, 1, 12},
      {4, 2, 8, 6, 6, 8, 4, 3, 1, 13},
      // Sub-byte outputs (pv.qnt staircase) under the int16 constraint.
      {8, 4, 4, 4, 4, 16, 8, 1, 0, 14},
      {8, 2, 2, 4, 4, 16, 8, 1, 0, 15},
      {4, 2, 4, 6, 6, 8, 8, 3, 1, 16},
      {4, 2, 2, 6, 6, 8, 8, 3, 1, 17},
  };
}

class MixedConv : public ::testing::TestWithParam<MixedCase> {};

TEST_P(MixedConv, BitExactOnAllDispatchModes) {
  const auto spec = to_spec(GetParam());
  const auto data = ConvLayerData::random(spec, GetParam().seed);
  const auto gold = data.golden();
  const u32 sel = mixed_sel_for(spec.in_bits, spec.w_bits);

  for (const bool reference : {true, false}) {
    for (const bool superblock : {false, true}) {
      if (reference && superblock) continue;
      const auto res = run_conv_layer(data, ConvVariant::kXpulpNN_Mixed,
                                      dispatch_cfg(reference, superblock));
      for (int i = 0; i < gold.elems(); ++i) {
        ASSERT_EQ(res.output.flat(i), gold.flat(i))
            << "ref=" << reference << " sb=" << superblock << " elem=" << i;
      }
      // Every mixed dot op must attribute to the programmed selector (and
      // only that one), and to the wide region's uniform counter.
      EXPECT_GT(res.perf.mixed_dotp_ops[sel], 0u);
      for (u32 s = 0; s < 3; ++s) {
        if (s != sel) {
          EXPECT_EQ(res.perf.mixed_dotp_ops[s], 0u);
        }
      }
      const unsigned wide_region = spec.in_bits == 8 ? 1 : 2;  // k8 / k4
      EXPECT_EQ(res.perf.dotp_ops[wide_region],
                res.perf.mixed_dotp_ops[sel]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MixedConv, ::testing::ValuesIn(mixed_grid()),
    [](const ::testing::TestParamInfo<MixedCase>& info) {
      const auto& c = info.param;
      return "a" + std::to_string(c.in_bits) + "w" + std::to_string(c.w_bits) +
             "o" + std::to_string(c.out_bits) + "_h" + std::to_string(c.h) +
             "ci" + std::to_string(c.cin) + "co" + std::to_string(c.cout) +
             "_k" + std::to_string(c.k);
    });

TEST(MixedLinear, BitExactOnAllDispatchModes) {
  struct Case {
    int in_f, out_f;
    unsigned in_bits, w_bits, out_bits;
  };
  u64 seed = 101;
  for (const Case c : {Case{64, 8, 8, 4, 8}, Case{64, 8, 8, 2, 8},
                       Case{64, 8, 4, 2, 8}, Case{16, 8, 8, 4, 4},
                       Case{16, 8, 8, 2, 2}, Case{64, 8, 4, 2, 4}}) {
    const auto data = LinearLayerData::random_mixed(
        c.in_f, c.out_f, c.in_bits, c.w_bits, c.out_bits, seed++);
    const auto gold = data.golden();
    for (const bool reference : {true, false}) {
      for (const bool superblock : {false, true}) {
        if (reference && superblock) continue;
        const auto res =
            run_linear_layer(data, ConvVariant::kXpulpNN_Mixed,
                             dispatch_cfg(reference, superblock));
        for (int i = 0; i < gold.elems(); ++i) {
          ASSERT_EQ(res.output.flat(i), gold.flat(i))
              << "a" << c.in_bits << "w" << c.w_bits << "o" << c.out_bits
              << " ref=" << reference << " sb=" << superblock
              << " elem=" << i;
        }
      }
    }
  }
}

TEST(MixedConv, UniformVariantsRejectMixedSpecs) {
  qnn::ConvSpec s = to_spec({8, 4, 8, 6, 6, 8, 4, 3, 1, 0});
  EXPECT_THROW(generate_conv_kernel(s, ConvVariant::kXpulpV2_8b), SimError);
  EXPECT_THROW(generate_conv_kernel(s, ConvVariant::kXpulpNN_HwQ), SimError);
}

TEST(MixedConv, MixedVariantRejectsUniformAndUnsupportedSpecs) {
  // Uniform 8x8 has no mpc selector.
  qnn::ConvSpec s = to_spec({8, 8, 8, 6, 6, 8, 4, 3, 1, 0});
  EXPECT_THROW(generate_conv_kernel(s, ConvVariant::kXpulpNN_Mixed),
               SimError);
  // 4x8 (weights wider than activations) is not a virtual-SIMD pair.
  s.in_bits = 4;
  s.w_bits = 8;
  EXPECT_THROW(generate_conv_kernel(s, ConvVariant::kXpulpNN_Mixed),
               SimError);
}

TEST(MixedConv, MixedVariantNeedsXpulpNN) {
  EXPECT_FALSE(
      variant_supported(ConvVariant::kXpulpNN_Mixed, sim::CoreConfig::ri5cy()));
  EXPECT_TRUE(variant_supported(ConvVariant::kXpulpNN_Mixed,
                                sim::CoreConfig::extended()));
}

TEST(MixedSelect, SelectorMapping) {
  EXPECT_EQ(mixed_sel_for(8, 4), 0u);
  EXPECT_EQ(mixed_sel_for(8, 2), 1u);
  EXPECT_EQ(mixed_sel_for(4, 2), 2u);
  EXPECT_THROW(mixed_sel_for(8, 8), SimError);
  EXPECT_THROW(mixed_sel_for(4, 4), SimError);
  EXPECT_THROW(mixed_sel_for(2, 2), SimError);
  EXPECT_THROW(mixed_sel_for(4, 8), SimError);
}

TEST(MixedCsr, ReservedSelectorTrapsOnEveryDispatchMode) {
  // mpc is WARL over its low two bits; value 3 is reserved and every mixed
  // dot op must raise IllegalInstruction while it is set.
  auto body = [](xasm::Assembler& a) {
    a.csrrwi(r::zero, isa::kMpcCsr, 3);
    a.li(r::t0, 0x01020304);
    a.li(r::t1, 0x00000011);
    a.pv_mldotup(r::a0, r::t0, r::t1);
  };
  for (const bool reference : {true, false}) {
    EXPECT_THROW(
        test::run_program(body, dispatch_cfg(reference, /*superblock=*/false)),
        SimError);
  }
}

TEST(MixedCsr, SelectorReadsBackAndMasksWrites) {
  // csrrw readback: write 0x...fe (low bits 2), read old value back.
  const auto res = test::run_program([](xasm::Assembler& a) {
    a.csrrwi(r::zero, isa::kMpcCsr, 1);
    a.li(r::t0, 0x7ffffffe);              // WARL: only low 2 bits stick
    a.csrrw(r::a0, isa::kMpcCsr, r::t0);  // a0 = 1
    a.csrrw(r::a1, isa::kMpcCsr, r::zero);  // a1 = 2 (0xfe & 3)
  });
  EXPECT_EQ(res.regs[r::a0], 1u);
  EXPECT_EQ(res.regs[r::a1], 2u);
}

}  // namespace
}  // namespace xpulp::kernels
