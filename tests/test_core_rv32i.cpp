// Semantics of the RV32I base ISA on the core model.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace xpulp {
namespace {

namespace r = xasm::reg;
using test::run_program;

TEST(Rv32i, ArithmeticImmediates) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 100);
    a.addi(r::a1, r::a0, -42);     // 58
    a.slti(r::a2, r::a0, 101);     // 1
    a.slti(r::a3, r::a0, -5);      // 0
    a.sltiu(r::a4, r::a0, 101);    // 1
    a.xori(r::a5, r::a0, 0xff);    // 155
    a.ori(r::a6, r::a0, 0x0f);     // 111
    a.andi(r::a7, r::a0, 0x0f);    // 4
  });
  EXPECT_EQ(res.regs[r::a1], 58u);
  EXPECT_EQ(res.regs[r::a2], 1u);
  EXPECT_EQ(res.regs[r::a3], 0u);
  EXPECT_EQ(res.regs[r::a4], 1u);
  EXPECT_EQ(res.regs[r::a5], 155u);
  EXPECT_EQ(res.regs[r::a6], 111u);
  EXPECT_EQ(res.regs[r::a7], 4u);
}

TEST(Rv32i, ShiftSemantics) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, -8);
    a.srai(r::a1, r::a0, 1);  // -4
    a.srli(r::a2, r::a0, 1);  // 0x7ffffffc
    a.slli(r::a3, r::a0, 4);  // -128
    a.li(r::t0, 33);          // shift amounts use the low 5 bits
    a.sll(r::a4, r::a0, r::t0);
    a.sra(r::a5, r::a0, r::t0);
    a.srl(r::a6, r::a0, r::t0);
  });
  EXPECT_EQ(static_cast<i32>(res.regs[r::a1]), -4);
  EXPECT_EQ(res.regs[r::a2], 0x7ffffffcu);
  EXPECT_EQ(static_cast<i32>(res.regs[r::a3]), -128);
  EXPECT_EQ(static_cast<i32>(res.regs[r::a4]), -16);
  EXPECT_EQ(static_cast<i32>(res.regs[r::a5]), -4);
  EXPECT_EQ(res.regs[r::a6], 0x7ffffffcu);
}

TEST(Rv32i, RegisterZeroIsHardwired) {
  auto res = run_program([](xasm::Assembler& a) {
    a.addi(r::zero, r::zero, 42);
    a.li(r::a0, 7);
    a.add(r::zero, r::a0, r::a0);
    a.mv(r::a1, r::zero);
  });
  EXPECT_EQ(res.regs[0], 0u);
  EXPECT_EQ(res.regs[r::a1], 0u);
}

TEST(Rv32i, LuiAuipc) {
  auto res = run_program([](xasm::Assembler& a) {
    a.lui(r::a0, 0xdead0000u);
    a.auipc(r::a1, 0x1000);  // pc of this instruction is 4
  });
  EXPECT_EQ(res.regs[r::a0], 0xdead0000u);
  EXPECT_EQ(res.regs[r::a1], 0x1004u);
}

TEST(Rv32i, BranchesAllConditions) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, -1);
    a.li(r::a1, 1);
    a.li(r::s0, 0);  // result bitmask of taken branches
    auto t1 = a.new_label();
    a.blt(r::a0, r::a1, t1);     // signed: -1 < 1 taken
    a.ori(r::s0, r::s0, 1);      // skipped
    a.bind(t1);
    auto t2 = a.new_label();
    a.bltu(r::a0, r::a1, t2);    // unsigned: 0xffffffff < 1 NOT taken
    a.ori(r::s0, r::s0, 2);      // executed
    a.bind(t2);
    auto t3 = a.new_label();
    a.bge(r::a1, r::a0, t3);     // taken
    a.ori(r::s0, r::s0, 4);
    a.bind(t3);
    auto t4 = a.new_label();
    a.bgeu(r::a0, r::a1, t4);    // taken (unsigned)
    a.ori(r::s0, r::s0, 8);
    a.bind(t4);
    auto t5 = a.new_label();
    a.beq(r::a0, r::a0, t5);
    a.ori(r::s0, r::s0, 16);
    a.bind(t5);
    auto t6 = a.new_label();
    a.bne(r::a0, r::a0, t6);     // not taken
    a.ori(r::s0, r::s0, 32);
    a.bind(t6);
  });
  EXPECT_EQ(res.regs[r::s0], 2u | 32u);
}

TEST(Rv32i, JalJalrLinkage) {
  auto res = run_program([](xasm::Assembler& a) {
    auto func = a.new_label();
    auto done = a.new_label();
    a.li(r::a0, 1);
    a.jal(r::ra, func);
    a.addi(r::a0, r::a0, 100);  // executed after return
    a.j(done);
    a.bind(func);
    a.addi(r::a0, r::a0, 10);
    a.ret();
    a.bind(done);
  });
  EXPECT_EQ(res.regs[r::a0], 111u);
  EXPECT_EQ(res.perf.jumps, 3u);  // jal + jalr(ret) + j
}

TEST(Rv32i, LoadStoreAllWidths) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::s0, 0x1000);
    a.li(r::a0, -2);               // 0xfffffffe
    a.sw(r::a0, r::s0, 0);
    a.lb(r::a1, r::s0, 0);         // sign-extended 0xfe -> -2
    a.lbu(r::a2, r::s0, 0);        // 0xfe
    a.lh(r::a3, r::s0, 0);         // -2
    a.lhu(r::a4, r::s0, 0);        // 0xfffe
    a.lw(r::a5, r::s0, 0);
    a.li(r::a6, 0x77);
    a.sb(r::a6, r::s0, 1);
    a.lw(r::a7, r::s0, 0);         // 0xffff77fe
    a.sh(r::a6, r::s0, 2);
    a.lw(r::t0, r::s0, 0);         // 0x007777fe? -> 0x0077 77fe
  });
  EXPECT_EQ(static_cast<i32>(res.regs[r::a1]), -2);
  EXPECT_EQ(res.regs[r::a2], 0xfeu);
  EXPECT_EQ(static_cast<i32>(res.regs[r::a3]), -2);
  EXPECT_EQ(res.regs[r::a4], 0xfffeu);
  EXPECT_EQ(res.regs[r::a5], 0xfffffffeu);
  EXPECT_EQ(res.regs[r::a7], 0xffff77feu);
  EXPECT_EQ(res.regs[r::t0], 0x007777feu);
}

TEST(Rv32i, MemoryFaultPropagates) {
  EXPECT_THROW(run_program([](xasm::Assembler& a) {
                 a.li(r::a0, 0x7ffffff0);
                 a.lw(r::a1, r::a0, 0);
               }),
               MemoryFault);
}

TEST(Rv32i, CsrCycleAndInstret) {
  auto res = run_program([](xasm::Assembler& a) {
    a.nop();
    a.nop();
    a.csrrs(r::a0, 0xB00, r::zero);  // mcycle
    a.csrrs(r::a1, 0xB02, r::zero);  // minstret
    a.csrrs(r::a2, 0xF14, r::zero);  // mhartid
  });
  EXPECT_GE(res.regs[r::a0], 2u);
  EXPECT_GE(res.regs[r::a1], 2u);
  EXPECT_EQ(res.regs[r::a2], 0u);
}

TEST(Rv32i, EbreakHalts) {
  auto res = run_program([](xasm::Assembler& a) { a.ebreak(); });
  EXPECT_EQ(res.reason, sim::HaltReason::kEbreak);
}

TEST(Rv32i, FibonacciLoop) {
  // A classic integration check: fib(20) with a branch loop.
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    a.li(r::a1, 1);
    a.li(r::t0, 20);
    auto loop = a.here();
    a.add(r::t1, r::a0, r::a1);
    a.mv(r::a0, r::a1);
    a.mv(r::a1, r::t1);
    a.addi(r::t0, r::t0, -1);
    a.bne(r::t0, r::zero, loop);
  });
  EXPECT_EQ(res.regs[r::a0], 6765u);   // fib(20)
  EXPECT_EQ(res.regs[r::a1], 10946u);  // fib(21)
}

}  // namespace
}  // namespace xpulp
