// PULPissimo SoC wrapper: load/run/report plumbing.
#include <gtest/gtest.h>

#include "soc/pulpissimo.hpp"

#include "xasm/assembler.hpp"

namespace xpulp::soc {
namespace {

namespace r = xasm::reg;

xasm::Program counting_program(u32 n) {
  xasm::Assembler a(0);
  a.li(r::t0, static_cast<i32>(n));
  a.li(r::a0, 0);
  auto loop = a.here();
  a.addi(r::a0, r::a0, 2);
  a.addi(r::t0, r::t0, -1);
  a.bne(r::t0, r::zero, loop);
  a.li(r::t1, 0x8000);
  a.sw(r::a0, r::t1, 0);
  a.ecall();
  return a.finish();
}

TEST(Pulpissimo, RunsAndReports) {
  Pulpissimo soc;
  const auto prog = counting_program(1000);
  soc.load(prog);
  EXPECT_EQ(soc.run(), sim::HaltReason::kEcall);
  EXPECT_EQ(soc.memory().load_u32(0x8000), 2000u);
  EXPECT_EQ(soc.core().reg(r::a0), 2000u);
  EXPECT_GT(soc.core().perf().cycles, 3000u);

  // 250 MHz operating point.
  const double secs = soc.seconds();
  EXPECT_NEAR(secs, static_cast<double>(soc.core().perf().cycles) / 250e6,
              1e-12);
  EXPECT_GT(soc.power().soc_mw(), 3.0);
  EXPECT_LT(soc.power().soc_mw(), 12.0);
  EXPECT_GT(soc.energy_uj(), 0.0);
}

TEST(Pulpissimo, BaselineConfigRejectsXpulpNN) {
  Pulpissimo soc(sim::CoreConfig::ri5cy());
  xasm::Assembler a(0);
  a.pv_qnt(4, r::a0, r::a1, r::a2);
  a.ecall();
  soc.load(a.finish());
  EXPECT_THROW(soc.run(), IllegalInstruction);
}

TEST(Pulpissimo, CustomOperatingPoint) {
  power::OperatingPoint op;
  op.freq_hz = 100e6;
  Pulpissimo soc(sim::CoreConfig::extended(), op);
  soc.load(counting_program(10));
  soc.run();
  EXPECT_NEAR(soc.seconds(),
              static_cast<double>(soc.core().perf().cycles) / 100e6, 1e-12);
}

TEST(Pulpissimo, ReloadResetsState) {
  Pulpissimo soc;
  soc.load(counting_program(10));
  soc.run();
  const auto c1 = soc.core().perf().cycles;
  soc.load(counting_program(10));
  EXPECT_FALSE(soc.core().halted());
  soc.run();
  // Perf counters accumulate across runs unless reset; cycles grew.
  EXPECT_GT(soc.core().perf().cycles, c1);
}

}  // namespace
}  // namespace xpulp::soc
