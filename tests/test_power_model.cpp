// Area/power model: Table III structure, the power-management knob, and
// the derived efficiency metric used by Figs. 7 and 9.
#include <gtest/gtest.h>

#include "kernels/conv_layer.hpp"
#include "kernels/gp_workload.hpp"
#include "power/power_model.hpp"

namespace xpulp::power {
namespace {

using kernels::ConvLayerData;
using kernels::ConvVariant;

TEST(AreaModel, BaselineMatchesCalibration) {
  const auto t = area_table();
  ASSERT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t[0].ri5cy_um2, 19729.9);
  EXPECT_DOUBLE_EQ(t[1].ri5cy_um2, 5708.9);
}

TEST(AreaModel, OverheadsTrackThePaper) {
  const auto t = area_table();
  // Total overhead: paper reports 8.59% (no PM) and 11.1% (PM).
  const double total_nopm = (t[0].ext_nopm_um2 / t[0].ri5cy_um2 - 1) * 100;
  const double total_pm = (t[0].ext_pm_um2 / t[0].ri5cy_um2 - 1) * 100;
  EXPECT_NEAR(total_nopm, 8.59, 1.2);
  EXPECT_NEAR(total_pm, 11.1, 1.2);
  // dotp unit: 18.3% / 19.9%.
  EXPECT_NEAR((t[1].ext_nopm_um2 / t[1].ri5cy_um2 - 1) * 100, 18.3, 0.5);
  EXPECT_NEAR((t[1].ext_pm_um2 / t[1].ri5cy_um2 - 1) * 100, 19.9, 0.5);
  // Ordering: PM adds registers/gating on top of the no-PM design.
  for (const auto& row : t) {
    EXPECT_GT(row.ext_nopm_um2, row.ri5cy_um2);
    if (row.component != "LSU") {
      EXPECT_GE(row.ext_pm_um2, row.ext_nopm_um2);
    }
  }
  EXPECT_EQ(core_area(false, true), t[0].ri5cy_um2);
  EXPECT_EQ(core_area(true, true), t[0].ext_pm_um2);
}

struct Measured {
  SocPower pm;
  SocPower nopm;
  SocPower baseline;
  cycles_t cycles = 0;
  u64 macs = 0;
};

Measured measure(unsigned bits, ConvVariant v) {
  Measured m;
  const auto data = ConvLayerData::random(qnn::ConvSpec::paper_layer(bits), 7);
  auto run_on = [&](sim::CoreConfig cfg) {
    const auto r = run_conv_layer(data, v, cfg);
    m.cycles = r.perf.cycles;
    m.macs = r.macs;
    return estimate_power(r.perf, r.activity, r.mem_stats, cfg);
  };
  m.pm = run_on(sim::CoreConfig::extended());
  auto nopm_cfg = sim::CoreConfig::extended();
  nopm_cfg.clock_gating = false;
  m.nopm = run_on(nopm_cfg);
  if (v == ConvVariant::kXpulpV2_8b) {
    m.baseline = run_on(sim::CoreConfig::ri5cy());
  }
  return m;
}

TEST(PowerModel, TableIIICorePowerCalibration) {
  const auto m = measure(8, ConvVariant::kXpulpV2_8b);
  // Paper: RI5CY 1.15 mW, extended+PM 1.22 mW (5.9% overhead) on the 8-bit
  // MatMul at 250 MHz.
  EXPECT_NEAR(m.baseline.core.core_mw(), 1.15, 0.06);
  EXPECT_NEAR(m.pm.core.core_mw(), 1.22, 0.06);
  const double overhead =
      (m.pm.core.core_mw() / m.baseline.core.core_mw() - 1) * 100;
  EXPECT_NEAR(overhead, 5.9, 2.0);
}

TEST(PowerModel, TableIIISocPowerCalibration) {
  const auto m8 = measure(8, ConvVariant::kXpulpV2_8b);
  EXPECT_NEAR(m8.baseline.soc_mw(), 5.93, 0.35);
  EXPECT_NEAR(m8.pm.soc_mw(), 6.04, 0.35);
  const auto m4 = measure(4, ConvVariant::kXpulpNN_HwQ);
  EXPECT_NEAR(m4.pm.soc_mw(), 5.71, 0.40);
  EXPECT_NEAR(m4.nopm.soc_mw(), 8.14, 0.80);
  const auto m2 = measure(2, ConvVariant::kXpulpNN_HwQ);
  EXPECT_NEAR(m2.pm.soc_mw(), 5.87, 0.40);
  EXPECT_NEAR(m2.nopm.soc_mw(), 8.99, 0.90);
}

TEST(PowerModel, PowerManagementSavesOnSubByteKernels) {
  for (unsigned bits : {4u, 2u}) {
    const auto m = measure(bits, ConvVariant::kXpulpNN_HwQ);
    EXPECT_GT(m.nopm.soc_mw(), m.pm.soc_mw() * 1.25) << bits;
  }
}

TEST(PowerModel, GpApplicationRunsInTheSameEnvelope) {
  const auto w = kernels::make_gp_workload();
  auto power_of = [&](sim::CoreConfig cfg) {
    mem::Memory mem;
    w.program.load(mem);
    sim::Core core(mem, cfg);
    core.reset(w.program.entry());
    core.run();
    return estimate_power(core.perf(), core.dotp_unit().activity(),
                          mem.stats(), cfg);
  };
  const double base = power_of(sim::CoreConfig::ri5cy()).soc_mw();
  const double pm = power_of(sim::CoreConfig::extended()).soc_mw();
  auto nopm_cfg = sim::CoreConfig::extended();
  nopm_cfg.clock_gating = false;
  const double nopm = power_of(nopm_cfg).soc_mw();
  // Paper: +3.5% with PM, +45.2% without.
  EXPECT_LT((pm / base - 1) * 100, 6.0);
  EXPECT_NEAR((nopm / pm - 1) * 100, 45.2, 12.0);
}

TEST(PowerModel, EfficiencyMetric) {
  // 1 GMAC in 4 ms at 1 mW -> 2.5e14 MAC/s/W = 250,000 GMAC/s/W.
  const double eff = gmac_per_s_per_w(1'000'000'000ull, 1'000'000, 1.0);
  EXPECT_NEAR(eff, 250'000.0, 1e-6);
  EXPECT_EQ(gmac_per_s_per_w(1, 0, 1.0), 0.0);
}

TEST(PowerModel, ExtendedCoreWinsEfficiencyOnSubByte) {
  // Fig. 7: the extended core improves sub-byte energy efficiency by up to
  // ~9x over the baseline running packed kernels.
  const auto data2 = ConvLayerData::random(qnn::ConvSpec::paper_layer(2), 7);
  const auto ext = run_conv_layer(data2, ConvVariant::kXpulpNN_HwQ,
                                  sim::CoreConfig::extended());
  const auto base = run_conv_layer(data2, ConvVariant::kXpulpV2_Sub,
                                   sim::CoreConfig::ri5cy());
  const auto p_ext = estimate_power(ext.perf, ext.activity, ext.mem_stats,
                                    sim::CoreConfig::extended());
  const auto p_base = estimate_power(base.perf, base.activity, base.mem_stats,
                                     sim::CoreConfig::ri5cy());
  const double e_ext =
      gmac_per_s_per_w(ext.macs, ext.perf.cycles, p_ext.soc_mw());
  const double e_base =
      gmac_per_s_per_w(base.macs, base.perf.cycles, p_base.soc_mw());
  EXPECT_GT(e_ext / e_base, 7.0);
  EXPECT_LT(e_ext / e_base, 12.0);
  // Peak efficiency in the paper's ballpark (279 GMAC/s/W).
  EXPECT_NEAR(e_ext, 279.0, 45.0);
}

TEST(PowerModel, ArmPlatformConstants) {
  EXPECT_EQ(stm32l4_platform().freq_hz, 80e6);
  EXPECT_EQ(stm32h7_platform().freq_hz, 400e6);
  EXPECT_GT(stm32h7_platform().power_mw, stm32l4_platform().power_mw);
}

}  // namespace
}  // namespace xpulp::power
