// Broad property sweep: the kernel generators must stay bit-exact across a
// grid of layer geometries, bitwidths, kernel sizes, strides and seeds --
// the combinations a real network zoo would throw at the library.
#include <gtest/gtest.h>

#include "kernels/conv_layer.hpp"
#include "qnn/pack.hpp"

namespace xpulp::kernels {
namespace {

struct SweepCase {
  unsigned bits;
  int h, w, cin, cout, k, pad, stride;
  u64 seed;
};

qnn::ConvSpec to_spec(const SweepCase& c) {
  qnn::ConvSpec s;
  s.in_h = c.h;
  s.in_w = c.w;
  s.in_c = c.cin;
  s.out_c = c.cout;
  s.k_h = s.k_w = c.k;
  s.pad = c.pad;
  s.stride = c.stride;
  s.in_bits = s.w_bits = s.out_bits = c.bits;
  return s;
}

class KernelSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(KernelSweep, ExtendedKernelBitExact) {
  const auto spec = to_spec(GetParam());
  const auto data = ConvLayerData::random(spec, GetParam().seed);
  const ConvVariant v = (spec.out_bits == 8) ? ConvVariant::kXpulpV2_8b
                                             : ConvVariant::kXpulpNN_HwQ;
  const auto res = run_conv_layer(data, v, sim::CoreConfig::extended());
  const auto gold = data.golden();
  for (int i = 0; i < gold.elems(); ++i) {
    ASSERT_EQ(res.output.flat(i), gold.flat(i))
        << "bits=" << spec.out_bits << " elem=" << i;
  }
}

std::vector<SweepCase> grid() {
  std::vector<SweepCase> v;
  u64 seed = 1;
  // 3x3 pad-1 stacks at several sizes and channel counts.
  for (const unsigned bits : {8u, 4u, 2u}) {
    const int cin_unit = 32 / static_cast<int>(bits) * 2;  // word-aligned
    for (const int hw : {4, 6, 10}) {
      for (const int cout : {4, 8}) {
        v.push_back({bits, hw, hw, cin_unit, cout, 3, 1, 1, seed++});
      }
    }
    // 5x5 kernels, no padding.
    v.push_back({bits, 8, 8, cin_unit, 4, 5, 0, 1, seed++});
    // 1x1 pointwise.
    v.push_back({bits, 6, 6, cin_unit * 2, 8, 1, 0, 1, seed++});
    // stride 2 downsampling.
    v.push_back({bits, 8, 8, cin_unit, 4, 3, 1, 2, seed++});
    // rectangular feature map.
    v.push_back({bits, 4, 8, cin_unit, 4, 3, 1, 1, seed++});
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KernelSweep, ::testing::ValuesIn(grid()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const auto& c = info.param;
      return "b" + std::to_string(c.bits) + "_h" + std::to_string(c.h) + "w" +
             std::to_string(c.w) + "_ci" + std::to_string(c.cin) + "co" +
             std::to_string(c.cout) + "_k" + std::to_string(c.k) + "p" +
             std::to_string(c.pad) + "s" + std::to_string(c.stride);
    });

// ---- mixed-precision grid: the virtual-SIMD kernel across the three mpc
// operand pairs, same geometry sweep philosophy. ----

struct MixedSweepCase {
  unsigned in_bits, w_bits, out_bits;
  int h, w, cin, cout, k, pad, stride;
  u64 seed;
};

qnn::ConvSpec to_mixed_spec(const MixedSweepCase& c) {
  qnn::ConvSpec s;
  s.in_h = c.h;
  s.in_w = c.w;
  s.in_c = c.cin;
  s.out_c = c.cout;
  s.k_h = s.k_w = c.k;
  s.pad = c.pad;
  s.stride = c.stride;
  s.in_bits = c.in_bits;
  s.w_bits = c.w_bits;
  s.out_bits = c.out_bits;
  return s;
}

class MixedKernelSweep : public ::testing::TestWithParam<MixedSweepCase> {};

TEST_P(MixedKernelSweep, MixedKernelBitExact) {
  const auto spec = to_mixed_spec(GetParam());
  const auto data = ConvLayerData::random(spec, GetParam().seed);
  const auto res = run_conv_layer(data, ConvVariant::kXpulpNN_Mixed,
                                  sim::CoreConfig::extended());
  const auto gold = data.golden();
  for (int i = 0; i < gold.elems(); ++i) {
    ASSERT_EQ(res.output.flat(i), gold.flat(i))
        << "a" << spec.in_bits << "w" << spec.w_bits << "o" << spec.out_bits
        << " elem=" << i;
  }
}

std::vector<MixedSweepCase> mixed_grid() {
  std::vector<MixedSweepCase> v;
  u64 seed = 1000;
  // 8-bit outputs dodge the int16 pre-activation ceiling, so the full
  // geometry sweep runs there for every operand pair.
  for (const auto& [a, w] : {std::pair{8u, 4u}, {8u, 2u}, {4u, 2u}}) {
    const int cin = a == 8 ? 8 : 16;  // word-aligned channel block
    for (const int hw : {4, 6, 10}) {
      v.push_back({a, w, 8, hw, hw, cin, 8, 3, 1, 1, seed++});
    }
    v.push_back({a, w, 8, 8, 8, cin, 4, 5, 0, 1, seed++});  // 5x5 no pad
    v.push_back({a, w, 8, 6, 6, cin * 2, 8, 1, 0, 1, seed++});  // pointwise
    v.push_back({a, w, 8, 8, 8, cin, 4, 3, 1, 2, seed++});  // stride 2
    v.push_back({a, w, 8, 4, 8, cin, 4, 3, 1, 1, seed++});  // rectangular
  }
  // Sub-byte outputs: 4x2 products are small enough for 3x3 stacks; the
  // 8-bit-activation pairs stay on pointwise layers to fit int16.
  v.push_back({4, 2, 4, 6, 6, 8, 8, 3, 1, 1, seed++});
  v.push_back({4, 2, 2, 6, 6, 8, 8, 3, 1, 1, seed++});
  v.push_back({8, 4, 4, 4, 4, 16, 8, 1, 0, 1, seed++});
  v.push_back({8, 2, 2, 4, 4, 16, 8, 1, 0, 1, seed++});
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    MixedGrid, MixedKernelSweep, ::testing::ValuesIn(mixed_grid()),
    [](const ::testing::TestParamInfo<MixedSweepCase>& info) {
      const auto& c = info.param;
      return "a" + std::to_string(c.in_bits) + "w" + std::to_string(c.w_bits) +
             "o" + std::to_string(c.out_bits) + "_h" + std::to_string(c.h) +
             "w" + std::to_string(c.w) + "_ci" + std::to_string(c.cin) +
             "co" + std::to_string(c.cout) + "_k" + std::to_string(c.k) +
             "p" + std::to_string(c.pad) + "s" + std::to_string(c.stride);
    });

// ---- failure injection: the checking machinery must actually detect
// corruption (a test of the tests). ----

TEST(FailureInjection, CorruptedThresholdsChangeTheOutput) {
  qnn::ConvSpec s;
  s.in_h = s.in_w = 6;
  s.in_c = 16;
  s.out_c = 8;
  s.in_bits = s.w_bits = s.out_bits = 4;
  const auto data = ConvLayerData::random(s, 77);
  const auto gold = data.golden();

  // Run with a corrupted threshold image: flip the root node of channel 3.
  ConvKernel kernel = generate_conv_kernel(s, ConvVariant::kXpulpNN_HwQ);
  mem::Memory mem;
  kernel.program.load(mem);
  mem.write_block(kernel.layout.input, qnn::pack_tensor(data.input, 4));
  mem.write_block(kernel.layout.weights,
                  qnn::pack_filter_bank(data.weights, 4));
  auto tbytes = data.thresholds.serialize();
  tbytes[3 * 32 + 1] ^= 0x40;  // channel 3, root node, high byte
  mem.write_block(kernel.layout.thresholds, tbytes);

  sim::Core core(mem);
  core.reset(kernel.program.entry());
  core.run();
  std::vector<u8> out(kernel.layout.output_bytes);
  mem.read_block(kernel.layout.output, out);
  const auto t = qnn::unpack_tensor(out, {s.out_h(), s.out_w(), s.out_c}, 4,
                                    false);
  int diffs = 0;
  for (int i = 0; i < gold.elems(); ++i) {
    if (t.flat(i) != gold.flat(i)) ++diffs;
  }
  EXPECT_GT(diffs, 0);  // corruption is visible...
  for (int oy = 0; oy < s.out_h(); ++oy) {
    for (int ox = 0; ox < s.out_w(); ++ox) {
      for (int oc = 0; oc < s.out_c; ++oc) {
        if (oc != 3) {
          // ...and confined to the corrupted channel.
          ASSERT_EQ(t.at(oy, ox, oc), gold.at(oy, ox, oc));
        }
      }
    }
  }
}

TEST(FailureInjection, MemoryContentionChangesTimingNotResults) {
  qnn::ConvSpec s;
  s.in_h = s.in_w = 6;
  s.in_c = 16;
  s.out_c = 8;
  s.in_bits = s.w_bits = s.out_bits = 4;
  const auto data = ConvLayerData::random(s, 78);
  const auto gold = data.golden();

  ConvKernel kernel = generate_conv_kernel(s, ConvVariant::kXpulpNN_HwQ);
  mem::Memory mem;
  kernel.program.load(mem);
  mem.write_block(kernel.layout.input, qnn::pack_tensor(data.input, 4));
  mem.write_block(kernel.layout.weights, qnn::pack_filter_bank(data.weights, 4));
  mem.write_block(kernel.layout.thresholds, data.thresholds.serialize());
  mem.set_contention_period(3);  // heavy interconnect pressure

  sim::Core core(mem);
  core.reset(kernel.program.entry());
  core.run();
  EXPECT_GT(core.perf().mem_stall_cycles, 1000u);

  std::vector<u8> out(kernel.layout.output_bytes);
  mem.read_block(kernel.layout.output, out);
  const auto t = qnn::unpack_tensor(out, {s.out_h(), s.out_w(), s.out_c}, 4,
                                    false);
  for (int i = 0; i < gold.elems(); ++i) {
    ASSERT_EQ(t.flat(i), gold.flat(i));
  }
}

TEST(FailureInjection, TruncatedProgramFaults) {
  // Loading only half the kernel must end in an illegal instruction or a
  // memory fault, not silent garbage.
  qnn::ConvSpec s;
  s.in_h = s.in_w = 4;
  s.in_c = 16;
  s.out_c = 4;
  s.in_bits = s.w_bits = s.out_bits = 4;
  ConvKernel kernel = generate_conv_kernel(s, ConvVariant::kXpulpNN_HwQ);
  mem::Memory mem;
  const auto words = kernel.program.words();
  for (u32 i = 0; i < kernel.program.size_words() / 2; ++i) {
    mem.store_u32(i * 4, words[i]);
  }
  sim::Core core(mem);
  core.reset(0);
  EXPECT_THROW(core.run(), SimError);
}

}  // namespace
}  // namespace xpulp::kernels
