// Differential snapshot tests: snapshot -> serialize -> deserialize ->
// restore into a *fresh* machine -> resume must reproduce the uninterrupted
// run bit-identically — architectural state, full memory image, halt reason
// and every PerfCounters field — on both dispatch paths, across the ISA
// tiers (RV32IM, XpulpV2, XpulpNN) and for mid-run cluster snapshots.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "cluster/cluster.hpp"
#include "cluster/parallel_conv.hpp"
#include "common/rng.hpp"
#include "diff_test_util.hpp"
#include "kernels/conv_layer.hpp"
#include "kernels/gp_workload.hpp"
#include "mem/memory.hpp"
#include "qnn/pack.hpp"
#include "sim/core.hpp"
#include "xasm/assembler.hpp"

namespace xpulp {
namespace {

namespace r = xasm::reg;
using test::expect_identical;
using test::final_state_of;
using test::FinalState;
using test::random_program;
using test::run_mode;

constexpr u64 kBudget = 2'000'000;

/// Step `src` for `snap_at` instructions, checkpoint it through the full
/// binary serialize/deserialize path, restore into a brand-new core and
/// memory, and run that machine to completion.
FinalState run_with_restore(const xasm::Program& prog, sim::CoreConfig cfg,
                            u64 snap_at, u64 max_instr = kBudget) {
  mem::Memory mem;
  prog.load(mem);
  sim::Core core(mem, cfg);
  core.reset(prog.entry(), prog.base() + prog.size_bytes());
  for (u64 n = 0; n < snap_at && !core.halted(); ++n) core.step();

  const ckpt::Snapshot snap =
      ckpt::deserialize(ckpt::serialize(ckpt::capture(core, mem)));

  mem::Memory fresh_mem(mem.size());
  sim::Core fresh(fresh_mem, cfg);
  ckpt::apply(snap, fresh, fresh_mem);
  for (u64 n = 0; n < max_instr && !fresh.halted(); ++n) fresh.step();
  return final_state_of(fresh, fresh_mem);
}

TEST(CkptDiff, RandomProgramsRestoreBitIdentical) {
  for (u64 trial = 0; trial < 10; ++trial) {
    const xasm::Program prog = random_program(0xc4a7d1ff + trial * 331);
    for (const bool reference : {false, true}) {
      sim::CoreConfig cfg = sim::CoreConfig::extended();
      cfg.reference_dispatch = reference;
      const FinalState base = run_mode(prog, cfg, reference);
      ASSERT_EQ(base.reason, sim::HaltReason::kEcall) << "trial " << trial;
      ASSERT_GT(base.perf.instructions, 2u);

      // A random interior snapshot point, plus points chosen to land inside
      // the structures that carry the most hidden state (hardware loops,
      // load-use forwarding): first third, middle, last instruction.
      Rng rng(trial * 2 + (reference ? 1 : 0));
      const u64 instr = base.perf.instructions;
      for (const u64 snap_at :
           {static_cast<u64>(1 + rng.uniform(0, static_cast<i32>(instr - 2))),
            instr / 3, instr / 2, instr - 1}) {
        const FinalState resumed = run_with_restore(prog, cfg, snap_at);
        expect_identical(base, resumed);
        if (::testing::Test::HasFailure()) {
          FAIL() << "diverged: trial " << trial << " snap_at " << snap_at
                 << (reference ? " reference" : " fast");
        }
      }
    }
  }
}

TEST(CkptDiff, BoundarySnapshotIndices) {
  const xasm::Program prog = random_program(0xb0a2d011);
  const sim::CoreConfig cfg = sim::CoreConfig::extended();
  const FinalState base = run_mode(prog, cfg, false);
  ASSERT_EQ(base.reason, sim::HaltReason::kEcall);

  // Snapshot before the first instruction: the restored machine replays
  // the whole program.
  expect_identical(base, run_with_restore(prog, cfg, 0));
  // Snapshot after the halt: the restored machine has nothing left to do
  // but must still report the complete final state.
  expect_identical(base, run_with_restore(prog, cfg, kBudget));
}

TEST(CkptDiff, SnapshotsAreDispatchAgnostic) {
  // A checkpoint taken mid-run on the reference interpreter and resumed on
  // the predecoded fast path (and vice versa) must still land on the
  // uninterrupted final state: the image captures modelled machine state
  // only, never host interpreter internals.
  const xasm::Program prog = random_program(0x5eedc0de);
  const FinalState base = run_mode(prog, sim::CoreConfig::extended(), false);
  ASSERT_EQ(base.reason, sim::HaltReason::kEcall);
  const u64 snap_at = base.perf.instructions / 2;

  for (const bool snap_on_reference : {false, true}) {
    sim::CoreConfig snap_cfg = sim::CoreConfig::extended();
    snap_cfg.reference_dispatch = snap_on_reference;
    mem::Memory mem;
    prog.load(mem);
    sim::Core core(mem, snap_cfg);
    core.reset(prog.entry(), prog.base() + prog.size_bytes());
    for (u64 n = 0; n < snap_at; ++n) core.step();
    const ckpt::Snapshot snap =
        ckpt::deserialize(ckpt::serialize(ckpt::capture(core, mem)));

    sim::CoreConfig resume_cfg = sim::CoreConfig::extended();
    resume_cfg.reference_dispatch = !snap_on_reference;
    mem::Memory fresh_mem(mem.size());
    sim::Core fresh(fresh_mem, resume_cfg);
    ckpt::apply(snap, fresh, fresh_mem);
    while (!fresh.halted()) fresh.step();
    expect_identical(base, final_state_of(fresh, fresh_mem));
  }
}

// ---------------------------------------------------------------------------
// Kernel workloads across the ISA tiers.

/// Pure RV32IM workload (no PULP extensions): LCG store/load/checksum loop
/// with multiplies, divides and data-dependent branches.
xasm::Program rv32im_program() {
  xasm::Assembler a(0);
  a.li(r::s0, 0x8000);
  a.li(r::t0, 0x1234567);   // LCG state
  a.li(r::t1, 180);         // iterations
  a.li(r::t2, 1103515245);  // LCG multiplier
  a.li(r::a0, 0);           // checksum
  const auto loop = a.here();
  a.mul(r::t0, r::t0, r::t2);
  a.addi(r::t0, r::t0, 1021);
  a.sw(r::t0, r::s0, 0);
  a.lw(r::t3, r::s0, 0);
  a.div(r::t4, r::t3, r::t1);
  a.add(r::a0, r::a0, r::t4);
  const auto skip = a.new_label();
  a.blt(r::t3, r::zero, skip);
  a.addi(r::a0, r::a0, 7);
  a.bind(skip);
  a.addi(r::s0, r::s0, 4);
  a.addi(r::t1, r::t1, -1);
  a.bne(r::t1, r::zero, loop);
  a.ecall();
  return a.finish();
}

TEST(CkptDiff, Rv32imTierRestores) {
  sim::CoreConfig cfg = sim::CoreConfig::extended();
  cfg.xpulpv2 = cfg.xpulpnn = cfg.hwloops = false;
  cfg.name = "rv32im";
  const xasm::Program prog = rv32im_program();
  for (const bool reference : {false, true}) {
    cfg.reference_dispatch = reference;
    const FinalState base = run_mode(prog, cfg, reference);
    ASSERT_EQ(base.reason, sim::HaltReason::kEcall);
    expect_identical(base,
                     run_with_restore(prog, cfg, base.perf.instructions / 2));
  }
}

TEST(CkptDiff, GpWorkloadXpulpV2TierRestores) {
  // The Table III GP application on the baseline RI5CY config: exercises
  // post-increment addressing state through a checkpoint.
  const auto w = kernels::make_gp_workload(48, 0x13579bdf);
  const sim::CoreConfig cfg = sim::CoreConfig::ri5cy();
  const FinalState base = run_mode(w.program, cfg, false);
  ASSERT_EQ(base.reason, sim::HaltReason::kEcall);
  for (const u64 frac : {5u, 2u}) {
    const FinalState resumed =
        run_with_restore(w.program, cfg, base.perf.instructions / frac);
    expect_identical(base, resumed);
    // The workload's own checksum survives the restore.
    u32 checksum = 0;
    std::memcpy(&checksum, resumed.mem.data() + w.result_addr, 4);
    EXPECT_EQ(checksum, w.expected_checksum);
  }
}

/// Run a conv kernel to completion, optionally detouring through a
/// checkpoint at `snap_at` retired instructions.
FinalState run_conv(const kernels::ConvKernel& kernel,
                    const kernels::ConvLayerData& data, sim::CoreConfig cfg,
                    std::optional<u64> snap_at) {
  mem::Memory mem;
  kernel.program.load(mem);
  kernels::load_conv_data(data, kernel.layout, mem);
  sim::Core core(mem, cfg);
  core.reset(kernel.program.entry(),
             kernel.program.base() + kernel.program.size_bytes());
  if (!snap_at) {
    core.run(600'000'000);
    return final_state_of(core, mem);
  }
  for (u64 n = 0; n < *snap_at && !core.halted(); ++n) core.step();
  const ckpt::Snapshot snap =
      ckpt::deserialize(ckpt::serialize(ckpt::capture(core, mem)));
  mem::Memory fresh_mem(mem.size());
  sim::Core fresh(fresh_mem, cfg);
  ckpt::apply(snap, fresh, fresh_mem);
  while (!fresh.halted()) fresh.step();
  return final_state_of(fresh, fresh_mem);
}

TEST(CkptDiff, ConvKernelVariantsRestoreBitIdentical) {
  // One variant per ISA tier: plain XpulpV2 8-bit, the packed sub-byte
  // XpulpV2 kernel, and the full XpulpNN kernel with hardware quantization
  // (dot-product unit state and pv.qnt stall accounting cross the
  // checkpoint mid-layer).
  using kernels::ConvVariant;
  for (const ConvVariant v :
       {ConvVariant::kXpulpV2_8b, ConvVariant::kXpulpV2_Sub,
        ConvVariant::kXpulpNN_HwQ}) {
    qnn::ConvSpec spec =
        qnn::ConvSpec::paper_layer(v == ConvVariant::kXpulpV2_8b ? 8 : 4);
    spec.in_h = spec.in_w = 4;
    spec.out_c = 8;
    const auto data = kernels::ConvLayerData::random(spec, 0x5eed);
    const auto kernel = kernels::generate_conv_kernel(spec, v);

    for (const bool reference : {false, true}) {
      sim::CoreConfig cfg = sim::CoreConfig::extended();
      cfg.reference_dispatch = reference;
      const FinalState base = run_conv(kernel, data, cfg, std::nullopt);
      ASSERT_EQ(base.reason, sim::HaltReason::kEcall)
          << kernels::variant_name(v);
      // Snapshot deep inside the matmul/quant phase.
      const FinalState resumed =
          run_conv(kernel, data, cfg, base.perf.instructions * 2 / 3);
      expect_identical(base, resumed);
      if (::testing::Test::HasFailure()) {
        FAIL() << kernels::variant_name(v)
               << (reference ? " reference" : " fast");
      }
    }
  }
}

TEST(CkptDiff, MidSuperblockSnapshotsLandOnExactBoundaries) {
  // With the superblock engine active, whole loop iterations retire as
  // fused bursts — a snapshot request at instruction index N must still
  // land on *exactly* N retired instructions (run_steps caps the burst
  // budget), and the resulting image must resume bit-identically into both
  // a fresh core and the live, rewound instance.
  qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(8);
  spec.in_h = spec.in_w = 4;
  spec.out_c = 8;
  const auto data = kernels::ConvLayerData::random(spec, 0x5eed);
  const auto kernel =
      kernels::generate_conv_kernel(spec, kernels::ConvVariant::kXpulpV2_8b);

  sim::CoreConfig cfg = sim::CoreConfig::extended();
  cfg.superblock = true;

  // Uninterrupted superblock baseline; the engine must actually fuse here,
  // or the snapshot points below would never fall inside a burst.
  FinalState base;
  {
    mem::Memory mem;
    kernel.program.load(mem);
    kernels::load_conv_data(data, kernel.layout, mem);
    sim::Core core(mem, cfg);
    core.reset(kernel.program.entry(),
               kernel.program.base() + kernel.program.size_bytes());
    core.run(600'000'000);
    ASSERT_GT(core.superblock_stats().fused_instructions, 0u);
    base = final_state_of(core, mem);
    ASSERT_EQ(base.reason, sim::HaltReason::kEcall);
  }

  Rng rng(0x5bc2);
  const u64 instr = base.perf.instructions;
  for (const u64 snap_at :
       {instr / 4, instr / 2, instr * 3 / 4,
        static_cast<u64>(1 + rng.uniform(0, static_cast<i32>(instr - 2)))}) {
    mem::Memory mem;
    kernel.program.load(mem);
    kernels::load_conv_data(data, kernel.layout, mem);
    sim::Core core(mem, cfg);
    core.reset(kernel.program.entry(),
               kernel.program.base() + kernel.program.size_bytes());

    // The pause must be boundary-exact even when `snap_at` falls in the
    // middle of a hot hwloop the engine would otherwise burst through.
    ASSERT_EQ(core.run_steps(snap_at), snap_at);
    ASSERT_EQ(core.perf().instructions, snap_at);
    ASSERT_FALSE(core.halted());
    const ckpt::Snapshot snap =
        ckpt::deserialize(ckpt::serialize(ckpt::capture(core, mem)));

    // Resume into a fresh machine (superblock plans rebuild lazily).
    mem::Memory fresh_mem(mem.size());
    sim::Core fresh(fresh_mem, cfg);
    ckpt::apply(snap, fresh, fresh_mem);
    fresh.run(600'000'000);
    expect_identical(base, final_state_of(fresh, fresh_mem));

    // Finish the paused instance, then rewind the same (live, warmed-up)
    // core back to the snapshot and replay the tail.
    core.run(600'000'000);
    expect_identical(base, final_state_of(core, mem));
    ckpt::apply(snap, core, mem);
    core.run(600'000'000);
    expect_identical(base, final_state_of(core, mem));
    if (::testing::Test::HasFailure()) FAIL() << "snap_at " << snap_at;
  }
}

TEST(CkptDiff, RandomProgramSnapshotsWithSuperblockActive) {
  // Same boundary-exactness property over the random program generator:
  // run_steps + capture + restore at arbitrary indices with fusion on.
  for (u64 trial = 0; trial < 6; ++trial) {
    const xasm::Program prog = random_program(0x5b00 + trial * 613);
    sim::CoreConfig cfg = sim::CoreConfig::extended();
    cfg.superblock = true;
    const FinalState base = run_mode(prog, cfg, false);
    ASSERT_EQ(base.reason, sim::HaltReason::kEcall) << "trial " << trial;

    Rng rng(0xb0c + trial);
    const u64 instr = base.perf.instructions;
    const u64 snap_at =
        static_cast<u64>(1 + rng.uniform(0, static_cast<i32>(instr - 2)));
    mem::Memory mem;
    prog.load(mem);
    sim::Core core(mem, cfg);
    core.reset(prog.entry(), prog.base() + prog.size_bytes());
    ASSERT_EQ(core.run_steps(snap_at), snap_at);
    ASSERT_EQ(core.perf().instructions, snap_at);
    const ckpt::Snapshot snap =
        ckpt::deserialize(ckpt::serialize(ckpt::capture(core, mem)));

    mem::Memory fresh_mem(mem.size());
    sim::Core fresh(fresh_mem, cfg);
    ckpt::apply(snap, fresh, fresh_mem);
    fresh.run(kBudget);
    expect_identical(base, final_state_of(fresh, fresh_mem));
    if (::testing::Test::HasFailure()) {
      FAIL() << "diverged: trial " << trial << " snap_at " << snap_at;
    }
  }
}

// ---------------------------------------------------------------------------
// Cluster snapshots.

std::vector<xasm::Program> cluster_programs(int cores) {
  std::vector<xasm::Program> progs;
  for (int c = 0; c < cores; ++c) {
    xasm::Assembler a(static_cast<addr_t>(c) * 0x1000);
    a.li(r::s0, 0x30000);  // shared hot bank: guarantees conflicts
    for (int i = 0; i < 24; ++i) a.lw(r::a0, r::s0, 0);
    a.li(r::t0, 40 * (c + 1));  // staggered runtimes
    const auto loop = a.here();
    a.sw(r::t0, r::s0, static_cast<i32>(4 + c * 4));
    a.addi(r::t0, r::t0, -1);
    a.bne(r::t0, r::zero, loop);
    a.ecall();
    progs.push_back(a.finish());
  }
  return progs;
}

struct ClusterFinal {
  std::vector<sim::PerfCounters> perf;
  std::vector<std::array<u32, 32>> regs;
  std::vector<addr_t> pcs;
  std::vector<u8> mem;
  cluster::ClusterStats stats;
};

ClusterFinal cluster_final(cluster::Cluster& cl) {
  ClusterFinal f;
  for (int c = 0; c < cl.num_cores(); ++c) {
    const sim::Core& core = cl.core(c);
    EXPECT_EQ(core.halt_reason(), sim::HaltReason::kEcall) << "core " << c;
    f.perf.push_back(core.perf());
    std::array<u32, 32> regs{};
    for (unsigned i = 0; i < 32; ++i) regs[i] = core.reg(i);
    f.regs.push_back(regs);
    f.pcs.push_back(core.pc());
  }
  f.mem.resize(cl.memory().size());
  cl.memory().read_block(0, f.mem);
  f.stats = cl.stats_since(0, 0);
  return f;
}

void expect_cluster_identical(const ClusterFinal& a, const ClusterFinal& b) {
  ASSERT_EQ(a.perf.size(), b.perf.size());
  for (size_t c = 0; c < a.perf.size(); ++c) {
    EXPECT_EQ(a.perf[c].cycles, b.perf[c].cycles) << "core " << c;
    EXPECT_EQ(a.perf[c].instructions, b.perf[c].instructions) << "core " << c;
    EXPECT_EQ(a.perf[c].mem_stall_cycles, b.perf[c].mem_stall_cycles)
        << "core " << c << " (bank-conflict stalls)";
    EXPECT_EQ(a.regs[c], b.regs[c]) << "core " << c;
    EXPECT_EQ(a.pcs[c], b.pcs[c]) << "core " << c;
  }
  EXPECT_EQ(a.mem, b.mem);
  EXPECT_EQ(a.stats.makespan, b.stats.makespan);
  EXPECT_EQ(a.stats.core_cycles, b.stats.core_cycles);
  EXPECT_EQ(a.stats.bank_conflicts, b.stats.bank_conflicts);
  EXPECT_EQ(a.stats.data_accesses, b.stats.data_accesses);
}

/// Drive a restored cluster to completion through the stepping API.
void finish_cluster(cluster::Cluster& cl) {
  cl.begin_run();
  while (cl.step_once()) {
  }
  cl.end_run();
}

TEST(CkptDiff, ClusterMidRunRestoreIntoFreshInstance) {
  cluster::ClusterConfig ccfg;
  ccfg.num_cores = 4;
  const auto progs = cluster_programs(4);

  // Uninterrupted baseline.
  cluster::Cluster base_cl(ccfg);
  base_cl.load(progs);
  base_cl.run();
  const ClusterFinal base = cluster_final(base_cl);

  // Snapshot mid-run, while bank bookings and the cross-core cycle skew
  // are live.
  cluster::Cluster paused(ccfg);
  paused.load(progs);
  paused.begin_run();
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(paused.step_once());
  const ckpt::Snapshot snap =
      ckpt::deserialize(ckpt::serialize(ckpt::capture(paused)));
  ASSERT_TRUE(snap.is_cluster());
  paused.end_run();

  // Restore into a brand-new cluster that never loaded any program: the
  // snapshot alone must carry code, data, core and arbiter state.
  cluster::Cluster fresh(ccfg);
  ckpt::apply(snap, fresh);
  finish_cluster(fresh);
  expect_cluster_identical(base, cluster_final(fresh));
}

/// Drive a (possibly restored) cluster to completion through run_steps —
/// under SchedulerMode::kBurst this resumes burst scheduling, unlike the
/// per-instruction step_once loop.
void finish_cluster_steps(cluster::Cluster& cl) {
  constexpr u64 kChunk = 1u << 20;
  cl.begin_run();
  while (cl.run_steps(kChunk) == kChunk) {
  }
  cl.end_run();
}

u64 cluster_instructions(const cluster::Cluster& cl) {
  u64 total = 0;
  for (int c = 0; c < cl.num_cores(); ++c) {
    total += cl.core(c).perf().instructions;
  }
  return total;
}

TEST(CkptDiff, ClusterMidBurstSnapshotsRestoreBitIdentical) {
  // Burst scheduling with a small horizon, so the snapshot indices below
  // land deep inside burst epochs. run_steps pauses boundary-exactly
  // (every burst lane drained and folded), the image must resume
  // bit-identically into a fresh cluster, the rewound live cluster, and
  // a reference-scheduled cluster — all landing on the uninterrupted
  // per-instruction baseline.
  cluster::ClusterConfig burst_cfg;
  burst_cfg.num_cores = 4;
  burst_cfg.scheduler = cluster::SchedulerMode::kBurst;
  burst_cfg.burst_horizon = 128;
  cluster::ClusterConfig ref_cfg = burst_cfg;
  ref_cfg.scheduler = cluster::SchedulerMode::kReference;
  const auto progs = cluster_programs(4);

  cluster::Cluster base_cl(ref_cfg);
  base_cl.load(progs);
  base_cl.run();
  const ClusterFinal base = cluster_final(base_cl);
  const u64 total = cluster_instructions(base_cl);
  ASSERT_GT(total, 600u);

  for (const u64 snap_at : {total / 5 + 1, total / 2 + 3, total - 7}) {
    cluster::Cluster paused(burst_cfg);
    paused.load(progs);
    paused.begin_run();
    ASSERT_EQ(paused.run_steps(snap_at), snap_at);
    ASSERT_EQ(cluster_instructions(paused), snap_at)
        << "burst pause overshot the requested index";
    const ckpt::Snapshot snap =
        ckpt::deserialize(ckpt::serialize(ckpt::capture(paused)));
    ASSERT_TRUE(snap.is_cluster());

    // Finish the paused instance under bursts.
    while (paused.run_steps(1u << 20) == (1u << 20)) {
    }
    paused.end_run();
    expect_cluster_identical(base, cluster_final(paused));

    // Rewind the same live, warmed-up instance and replay the tail.
    ckpt::apply(snap, paused);
    finish_cluster_steps(paused);
    expect_cluster_identical(base, cluster_final(paused));

    // Resume into a fresh burst-scheduled cluster.
    cluster::Cluster fresh(burst_cfg);
    ckpt::apply(snap, fresh);
    finish_cluster_steps(fresh);
    expect_cluster_identical(base, cluster_final(fresh));

    // Cross-scheduler: an image taken mid-burst carries no burst-engine
    // state, so the per-instruction scheduler must replay it too.
    cluster::Cluster ref_resume(ref_cfg);
    ckpt::apply(snap, ref_resume);
    finish_cluster(ref_resume);
    expect_cluster_identical(base, cluster_final(ref_resume));
    if (::testing::Test::HasFailure()) FAIL() << "snap_at " << snap_at;
  }
}

TEST(CkptDiff, ClusterMidBurstSnapshotsWithSuperblockConv) {
  // The full stack crossing a mid-burst checkpoint: superblock dispatch
  // inside cluster bursts on a parallel conv layer, snapshotted at an
  // index chosen to fall inside a fused hot loop.
  qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(4);
  spec.in_h = spec.in_w = 6;
  spec.in_c = 16;
  spec.out_c = 8;
  const auto data = kernels::ConvLayerData::random(spec, 0x5eed);
  const auto kernels = cluster::make_parallel_conv_kernels(
      spec, kernels::ConvVariant::kXpulpNN_HwQ, 4);
  std::vector<xasm::Program> progs;
  for (const auto& k : kernels) progs.push_back(k.program);
  const auto& layout = kernels.front().layout;

  cluster::ClusterConfig burst_cfg;
  burst_cfg.num_cores = 4;
  burst_cfg.scheduler = cluster::SchedulerMode::kBurst;
  burst_cfg.burst_horizon = 256;
  burst_cfg.core.superblock = true;
  cluster::ClusterConfig ref_cfg = burst_cfg;
  ref_cfg.scheduler = cluster::SchedulerMode::kReference;

  const auto load_cluster = [&](cluster::Cluster& cl) {
    cl.memory().write_block(layout.input,
                            qnn::pack_tensor(data.input, spec.in_bits));
    cl.memory().write_block(layout.weights,
                            qnn::pack_filter_bank(data.weights, spec.w_bits));
    if (spec.out_bits != 8) {
      cl.memory().write_block(layout.thresholds, data.thresholds.serialize());
    }
    cl.load(progs);
  };

  cluster::Cluster base_cl(ref_cfg);
  load_cluster(base_cl);
  base_cl.run();
  const ClusterFinal base = cluster_final(base_cl);
  const u64 total = cluster_instructions(base_cl);

  cluster::Cluster paused(burst_cfg);
  load_cluster(paused);
  paused.begin_run();
  const u64 snap_at = total / 2 + 5;  // deep inside the matmul hot loops
  ASSERT_EQ(paused.run_steps(snap_at), snap_at);
  ASSERT_EQ(cluster_instructions(paused), snap_at);
  const ckpt::Snapshot snap =
      ckpt::deserialize(ckpt::serialize(ckpt::capture(paused)));
  paused.end_run();

  cluster::Cluster fresh(burst_cfg);
  ckpt::apply(snap, fresh);
  finish_cluster_steps(fresh);
  expect_cluster_identical(base, cluster_final(fresh));

  ckpt::apply(snap, paused);
  finish_cluster_steps(paused);
  expect_cluster_identical(base, cluster_final(paused));
}

TEST(CkptDiff, ClusterMidRunRestoreIntoLiveInstance) {
  cluster::ClusterConfig ccfg;
  ccfg.num_cores = 2;
  const auto progs = cluster_programs(2);

  cluster::Cluster cl(ccfg);
  cl.load(progs);
  cl.begin_run();
  for (int i = 0; i < 120; ++i) ASSERT_TRUE(cl.step_once());
  const ckpt::Snapshot snap =
      ckpt::deserialize(ckpt::serialize(ckpt::capture(cl)));
  while (cl.step_once()) {
  }
  cl.end_run();
  const ClusterFinal base = cluster_final(cl);

  // Rewind the *same* (now halted) instance back to the snapshot and
  // replay: the replayed tail must reproduce the first completion exactly.
  ckpt::apply(snap, cl);
  finish_cluster(cl);
  expect_cluster_identical(base, cluster_final(cl));
}

}  // namespace
}  // namespace xpulp
