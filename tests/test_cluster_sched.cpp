// Differential tests of the cluster burst scheduler (DESIGN.md §15): for
// race-free programs, SchedulerMode::kBurst must be *bit-identical* to the
// per-instruction reference scheduler — every PerfCounters field of every
// core, the shared MemStats, the arbiter's conflict/access totals, the
// final memory image, the observer event sequence, and sampled telemetry —
// across core counts, both paper conv workloads, and both dispatch modes.
// Also covers the MinClockHeap pick order, the exact instruction-budget
// trap, and the automatic demotion to reference scheduling.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/parallel_conv.hpp"
#include "common/rng.hpp"
#include "obs/sampler.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::cluster {
namespace {

namespace r = xasm::reg;
using kernels::ConvLayerData;
using kernels::ConvVariant;

// ---------------------------------------------------------------------------
// MinClockHeap: the O(log N) scheduler pick must reproduce the reference
// argmin (smallest clock, ties to the lowest core index) exactly.

TEST(MinClockHeap, KeyPackingRoundTrips) {
  const u64 k = MinClockHeap::key(0x123456789abcull, 37);
  EXPECT_EQ(MinClockHeap::clock_of(k), 0x123456789abcull);
  EXPECT_EQ(MinClockHeap::core_of(k), 37);
  // Key order is lexicographic (clock, core): same clock, lower core wins.
  EXPECT_LT(MinClockHeap::key(100, 3), MinClockHeap::key(100, 4));
  EXPECT_LT(MinClockHeap::key(100, 63), MinClockHeap::key(101, 0));
}

TEST(MinClockHeap, MatchesArgminThroughSchedulerWorkload) {
  // Drive the heap through the scheduler's exact usage pattern —
  // update_top after most picks, pop_top on halt — against a naive
  // first-lowest-index argmin over the same clocks. Small random clock
  // increments keep ties frequent, which is where the core-index
  // tie-break matters.
  for (const int n : {2, 8, 40}) {
    Rng rng(0x5eedu + static_cast<u64>(n));
    std::vector<cycles_t> clocks(static_cast<size_t>(n), 0);
    std::vector<bool> halted(static_cast<size_t>(n), false);
    MinClockHeap heap;
    for (int i = 0; i < n; ++i) heap.push(MinClockHeap::key(0, i));

    for (int step = 0; step < 20000 && !heap.empty(); ++step) {
      int ref_pick = -1;
      for (int i = 0; i < n; ++i) {
        if (halted[static_cast<size_t>(i)]) continue;
        if (ref_pick < 0 ||
            clocks[static_cast<size_t>(i)] <
                clocks[static_cast<size_t>(ref_pick)]) {
          ref_pick = i;
        }
      }
      ASSERT_EQ(MinClockHeap::core_of(heap.top()), ref_pick) << step;
      ASSERT_EQ(MinClockHeap::clock_of(heap.top()),
                clocks[static_cast<size_t>(ref_pick)])
          << step;

      if (rng.uniform(0, 199) == 0) {
        halted[static_cast<size_t>(ref_pick)] = true;
        heap.pop_top();
      } else {
        clocks[static_cast<size_t>(ref_pick)] +=
            static_cast<cycles_t>(rng.uniform(0, 3));
        heap.update_top(MinClockHeap::key(
            clocks[static_cast<size_t>(ref_pick)], ref_pick));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Differential harness: capture everything a scheduler can influence.

struct EventHash {
  u64 h = 1469598103934665603ull;  // FNV-1a over the observer stream
  void add(u64 v) {
    h ^= v;
    h *= 1099511628211ull;
  }
};

struct RunCapture {
  std::vector<sim::PerfCounters> perf;
  mem::MemStats mem{};
  cluster::ClusterStats stats;
  std::vector<u8> memory;
  u64 event_hash = 0;
  u64 events = 0;
  ClusterBurstStats burst;
};

void capture_cluster(Cluster& cl, const EventHash& eh, u64 events,
                     RunCapture& out) {
  for (int c = 0; c < cl.num_cores(); ++c) {
    out.perf.push_back(cl.core(c).perf());
  }
  out.mem = cl.memory().stats();
  out.stats = cl.stats_since(0, 0);
  out.memory.resize(cl.memory().size());
  cl.memory().read_block(0, out.memory);
  out.event_hash = eh.h;
  out.events = events;
  out.burst = cl.burst_stats();
}

Cluster::AccessObserver make_hashing_observer(EventHash& eh, u64& events) {
  return [&eh, &events](int core, cycles_t cycle, addr_t pc, addr_t addr,
                        unsigned size, bool is_store,
                        unsigned conflict_stalls) {
    eh.add(static_cast<u64>(core));
    eh.add(cycle);
    eh.add(pc);
    eh.add(addr);
    eh.add(size);
    eh.add(is_store ? 1 : 0);
    eh.add(conflict_stalls);
    ++events;
  };
}

void expect_captures_identical(const RunCapture& ref, const RunCapture& burst,
                               const char* what) {
  ASSERT_EQ(ref.perf.size(), burst.perf.size()) << what;
  for (size_t c = 0; c < ref.perf.size(); ++c) {
    EXPECT_EQ(std::memcmp(&ref.perf[c], &burst.perf[c],
                          sizeof(sim::PerfCounters)),
              0)
        << what << ": PerfCounters of core " << c << " diverged (cycles "
        << ref.perf[c].cycles << " vs " << burst.perf[c].cycles
        << ", mem stalls " << ref.perf[c].mem_stall_cycles << " vs "
        << burst.perf[c].mem_stall_cycles << ")";
  }
  EXPECT_EQ(std::memcmp(&ref.mem, &burst.mem, sizeof(mem::MemStats)), 0)
      << what << ": shared MemStats diverged";
  EXPECT_EQ(ref.stats.makespan, burst.stats.makespan) << what;
  EXPECT_EQ(ref.stats.core_cycles, burst.stats.core_cycles) << what;
  EXPECT_EQ(ref.stats.bank_conflicts, burst.stats.bank_conflicts) << what;
  EXPECT_EQ(ref.stats.data_accesses, burst.stats.data_accesses) << what;
  EXPECT_EQ(ref.events, burst.events)
      << what << ": observer event counts diverged";
  EXPECT_EQ(ref.event_hash, burst.event_hash)
      << what << ": observer event sequence diverged";
  EXPECT_EQ(ref.memory == burst.memory, true)
      << what << ": final memory images diverged";
}

// ---------------------------------------------------------------------------
// Paper conv workloads: 1/2/4/8 cores x {8-bit XpulpV2, 4-bit XpulpNN HwQ}
// x {fast, superblock} dispatch. The reference scheduler steps per
// instruction, so its result is dispatch-independent (test_dispatch_diff);
// one reference run per (bits, cores) serves both dispatch comparisons.

struct ConvCase {
  unsigned bits;
  int cores;
};

class BurstConvDiff : public ::testing::TestWithParam<ConvCase> {};

TEST_P(BurstConvDiff, BitIdenticalAcrossSchedulers) {
  const auto [bits, cores] = GetParam();
  const auto spec = qnn::ConvSpec::paper_layer(bits);
  const auto data = ConvLayerData::random(spec, 12345);
  const ConvVariant v = (bits == 8) ? ConvVariant::kXpulpV2_8b
                                    : ConvVariant::kXpulpNN_HwQ;
  const auto gold = data.golden();

  const auto run_one = [&](SchedulerMode mode, bool superblock,
                           RunCapture& out) {
    ClusterConfig cfg;
    cfg.num_cores = cores;
    cfg.scheduler = mode;
    cfg.core.superblock = superblock;
    EventHash eh;
    u64 events = 0;
    const auto res = run_parallel_conv(
        data, v, cfg,
        [&](Cluster& cl, const auto&) {
          cl.set_access_observer(make_hashing_observer(eh, events));
        },
        [&](Cluster& cl, const auto&) {
          capture_cluster(cl, eh, events, out);
        });
    EXPECT_EQ(res.output == gold, true) << "golden mismatch";
  };

  RunCapture ref;
  run_one(SchedulerMode::kReference, false, ref);
  ASSERT_GT(ref.events, 0u);

  for (const bool superblock : {false, true}) {
    RunCapture burst;
    run_one(SchedulerMode::kBurst, superblock, burst);
    expect_captures_identical(
        ref, burst, superblock ? "superblock dispatch" : "fast dispatch");
    // The scheduler must actually have burst — a silently demoted run
    // would pass the comparison without testing anything.
    EXPECT_EQ(burst.burst.fallback_runs, 0u);
    EXPECT_GT(burst.burst.bursts, 0u);
    EXPECT_GT(burst.burst.replayed_accesses, 0u);
    u64 total_instr = 0;
    for (const auto& p : burst.perf) total_instr += p.instructions;
    EXPECT_GT(burst.burst.burst_instructions, total_instr / 2)
        << "most instructions should retire inside bursts";
    if (cores > 1) {
      // Multi-core paper conv runs have real bank conflicts whose stalls
      // the merge must assign after the fact.
      EXPECT_GT(burst.burst.deferred_stall_cycles, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperLayers, BurstConvDiff,
    ::testing::Values(ConvCase{8, 1}, ConvCase{8, 2}, ConvCase{8, 4},
                      ConvCase{8, 8}, ConvCase{4, 1}, ConvCase{4, 2},
                      ConvCase{4, 4}, ConvCase{4, 8}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      return "b" + std::to_string(info.param.bits) + "_c" +
             std::to_string(info.param.cores);
    });

// ---------------------------------------------------------------------------
// Conflict stress: every core hammers the same bank, so nearly every
// replayed access carries an arbiter stall — the worst case for the merge's
// deferred-stall bookkeeping (cascaded conflicts, per-instruction offset
// latch, fold-on-drain).

std::vector<xasm::Program> same_bank_programs(int cores, int rounds) {
  std::vector<xasm::Program> progs;
  for (int c = 0; c < cores; ++c) {
    xasm::Assembler a(static_cast<addr_t>(c) * 0x1000);
    a.li(r::s0, 0x30000);  // one shared word: a single hot bank
    a.li(r::s1, 0x30100 + c * 0x40);  // plus a private spill slot
    a.li(r::t0, rounds + 7 * c);      // staggered runtimes
    // Back-to-back same-bank loads: each core occupies the hot bank every
    // cycle, so competing cores collide and cascade no matter how the
    // loop phases drift.
    for (int i = 0; i < 48; ++i) a.lw(r::a0, r::s0, 0);
    const auto loop = a.here();
    a.lw(r::a0, r::s0, 0);
    a.lw(r::a2, r::s0, 0);
    a.lw(r::a3, r::s0, 0);
    a.sw(r::t0, r::s1, 0);
    a.lw(r::a1, r::s0, 0);
    a.addi(r::t0, r::t0, -1);
    a.bne(r::t0, r::zero, loop);
    a.sw(r::a0, r::s1, 4);
    a.ecall();
    progs.push_back(a.finish());
  }
  return progs;
}

RunCapture run_programs(const std::vector<xasm::Program>& progs,
                        ClusterConfig cfg) {
  cfg.num_cores = static_cast<int>(progs.size());
  Cluster cl(cfg);
  EventHash eh;
  u64 events = 0;
  cl.set_access_observer(make_hashing_observer(eh, events));
  cl.load(progs);
  cl.run();
  RunCapture out;
  capture_cluster(cl, eh, events, out);
  return out;
}

TEST(BurstSchedDiff, SameBankConflictStress) {
  for (const int cores : {2, 4, 8}) {
    const auto progs = same_bank_programs(cores, 600);
    ClusterConfig ref_cfg;
    const RunCapture ref = run_programs(progs, ref_cfg);
    ASSERT_GT(ref.stats.bank_conflicts, 100u) << cores << " cores";

    for (const u32 horizon : {64u, 1536u}) {
      ClusterConfig burst_cfg;
      burst_cfg.scheduler = SchedulerMode::kBurst;
      burst_cfg.burst_horizon = horizon;
      const RunCapture burst = run_programs(progs, burst_cfg);
      expect_captures_identical(ref, burst, "same-bank stress");
      EXPECT_GT(burst.burst.deferred_stall_cycles, 0u);
      EXPECT_EQ(burst.burst.fallback_runs, 0u);
      if (::testing::Test::HasFailure()) {
        FAIL() << cores << " cores, horizon " << horizon;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Instruction budget: under bursts the trap must fire at precisely the same
// total retired-instruction index as the reference scheduler, with the
// trapped state bit-identical (satellite of the burst tentpole).

u64 total_instructions(const RunCapture& c) {
  u64 t = 0;
  for (const auto& p : c.perf) t += p.instructions;
  return t;
}

TEST(BurstSchedDiff, BudgetTrapsAtExactInstructionIndex) {
  const auto progs = same_bank_programs(4, 400);
  const RunCapture full = run_programs(progs, ClusterConfig{});
  const u64 total = total_instructions(full);
  ASSERT_GT(total, 1000u);

  const auto run_budget = [&](SchedulerMode mode, u64 budget, bool& threw) {
    ClusterConfig cfg;
    cfg.num_cores = 4;
    cfg.scheduler = mode;
    cfg.burst_horizon = 96;  // several epochs inside the budget
    Cluster cl(cfg);
    cl.load(progs);
    threw = false;
    try {
      cl.run(budget);
    } catch (const SimError&) {
      threw = true;
    }
    RunCapture out;
    const EventHash eh;
    capture_cluster(cl, eh, 0, out);
    return out;
  };

  // Budgets straddling the boundary plus mid-run values that land inside
  // a burst epoch.
  for (const u64 budget : {total / 3, total / 2, total - 1, total}) {
    bool ref_threw = false, burst_threw = false;
    const RunCapture ref =
        run_budget(SchedulerMode::kReference, budget, ref_threw);
    const RunCapture burst =
        run_budget(SchedulerMode::kBurst, budget, burst_threw);
    EXPECT_EQ(ref_threw, budget < total) << "budget " << budget;
    EXPECT_EQ(burst_threw, ref_threw) << "budget " << budget;
    if (ref_threw) {
      // The historical contract: the run executes exactly budget+1
      // instructions — reaching the state the reference loop trapped
      // in — and then throws.
      EXPECT_EQ(total_instructions(ref), budget + 1);
      EXPECT_EQ(total_instructions(burst), budget + 1);
    }
    expect_captures_identical(ref, burst, "budget trap state");
    if (::testing::Test::HasFailure()) FAIL() << "budget " << budget;
  }
}

TEST(BurstSchedDiff, RunStepsPausesMidBurstExactly) {
  // run_steps(n) under burst scheduling must stop at exactly n retired
  // instructions with state bit-identical to the reference scheduler
  // paused there — the property mid-burst checkpoints build on.
  const auto progs = same_bank_programs(4, 300);

  const auto run_paused = [&](SchedulerMode mode, u64 steps) {
    ClusterConfig cfg;
    cfg.num_cores = 4;
    cfg.scheduler = mode;
    cfg.burst_horizon = 128;
    Cluster cl(cfg);
    cl.load(progs);
    cl.begin_run();
    EXPECT_EQ(cl.run_steps(steps), steps);
    cl.end_run();
    RunCapture out;
    const EventHash eh;
    capture_cluster(cl, eh, 0, out);
    return out;
  };

  for (const u64 steps : {1ull, 97ull, 1013ull, 2311ull}) {
    const RunCapture ref = run_paused(SchedulerMode::kReference, steps);
    const RunCapture burst = run_paused(SchedulerMode::kBurst, steps);
    EXPECT_EQ(total_instructions(ref), steps);
    EXPECT_EQ(total_instructions(burst), steps);
    expect_captures_identical(ref, burst, "paused state");
    if (::testing::Test::HasFailure()) FAIL() << "steps " << steps;
  }
}

// ---------------------------------------------------------------------------
// Sampled telemetry: with an obs::Sampler on every core, sample windows
// must be byte-identical between schedulers — timestamps, per-core
// PerfCounters, the shared-TCDM MemStats view, and dot-product activity.
// (SuperblockStats inside a Sample are a host-engine diagnostic and differ
// by design: the reference scheduler steps per instruction and never
// fuses.)

TEST(BurstSchedDiff, SampledCounterTracksAreSchedulerExact) {
  qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(4);
  spec.in_h = spec.in_w = 8;
  spec.in_c = 16;
  spec.out_c = 16;
  const auto data = ConvLayerData::random(spec, 99);

  const auto run_sampled = [&](SchedulerMode mode, bool superblock) {
    ClusterConfig cfg;
    cfg.num_cores = 4;
    cfg.scheduler = mode;
    cfg.core.superblock = superblock;
    std::vector<std::unique_ptr<obs::Sampler>> samplers;
    std::vector<std::vector<obs::Sample>> series;
    run_parallel_conv(
        data, ConvVariant::kXpulpNN_HwQ, cfg,
        [&](Cluster& cl, const auto&) {
          for (int c = 0; c < cl.num_cores(); ++c) {
            obs::Sampler::Options sopts;
            // The interval must exceed the burst engine's sample margin
            // (cores burst only up to due - margin), or the run degrades
            // to all-reference segments and `bursts > 0` below fails.
            sopts.interval_cycles = 4096;
            sopts.track = static_cast<u8>(c);
            sopts.mem_stats = &cl.memory().stats();
            samplers.push_back(
                std::make_unique<obs::Sampler>(cl.core(c), sopts));
          }
        },
        [&](Cluster& cl, const auto&) {
          for (auto& s : samplers) s->finalize();
          for (int c = 0; c < cl.num_cores(); ++c) {
            series.push_back(samplers[static_cast<size_t>(c)]->samples());
          }
          if (mode == SchedulerMode::kBurst) {
            EXPECT_EQ(cl.burst_stats().fallback_runs, 0u);
            EXPECT_GT(cl.burst_stats().bursts, 0u);
          }
        });
    return series;
  };

  const auto ref = run_sampled(SchedulerMode::kReference, false);
  for (const bool superblock : {false, true}) {
    const auto burst = run_sampled(SchedulerMode::kBurst, superblock);
    ASSERT_EQ(burst.size(), ref.size());
    for (size_t c = 0; c < ref.size(); ++c) {
      ASSERT_EQ(burst[c].size(), ref[c].size()) << "core " << c;
      ASSERT_GT(ref[c].size(), 2u) << "core " << c << " barely sampled";
      for (size_t i = 0; i < ref[c].size(); ++i) {
        EXPECT_EQ(burst[c][i].ts_cycles, ref[c][i].ts_cycles)
            << "core " << c << " window " << i;
        EXPECT_EQ(std::memcmp(&burst[c][i].perf, &ref[c][i].perf,
                              sizeof(sim::PerfCounters)),
                  0)
            << "core " << c << " window " << i << " perf";
        EXPECT_EQ(std::memcmp(&burst[c][i].mem, &ref[c][i].mem,
                              sizeof(mem::MemStats)),
                  0)
            << "core " << c << " window " << i << " shared mem stats";
        EXPECT_EQ(std::memcmp(&burst[c][i].dotp, &ref[c][i].dotp,
                              sizeof(sim::DotpActivity)),
                  0)
            << "core " << c << " window " << i << " dotp activity";
      }
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << (superblock ? "superblock" : "fast") << " dispatch";
    }
  }
}

// ---------------------------------------------------------------------------
// Demotion: programs that read the cycle CSR observe their own timing, so
// deferring arbitration would change architectural state. The burst
// scheduler must fall back to reference scheduling — and say so.

TEST(BurstSchedDiff, CycleCsrProgramsDemoteToReference) {
  std::vector<xasm::Program> progs;
  for (int c = 0; c < 2; ++c) {
    xasm::Assembler a(static_cast<addr_t>(c) * 0x1000);
    a.li(r::s0, 0x30000);
    a.li(r::t0, 50);
    const auto loop = a.here();
    a.lw(r::a0, r::s0, 0);
    a.addi(r::t0, r::t0, -1);
    a.bne(r::t0, r::zero, loop);
    a.csrrs(static_cast<u8>(r::a1), 0xC00, static_cast<u8>(r::zero));
    a.sw(r::a1, r::s0, static_cast<i32>(8 + 4 * c));
    a.ecall();
    progs.push_back(a.finish());
  }

  const RunCapture ref = run_programs(progs, ClusterConfig{});
  ClusterConfig burst_cfg;
  burst_cfg.scheduler = SchedulerMode::kBurst;
  const RunCapture demoted = run_programs(progs, burst_cfg);
  expect_captures_identical(ref, demoted, "demoted run");
  EXPECT_GT(demoted.burst.fallback_runs, 0u);
  EXPECT_EQ(demoted.burst.bursts, 0u);
}

}  // namespace
}  // namespace xpulp::cluster
