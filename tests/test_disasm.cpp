// Disassembler output spot-checks (used by traces and error reports).
#include <gtest/gtest.h>

#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"

namespace xpulp::isa {
namespace {

std::string dis(u32 word, addr_t pc = 0) {
  return disassemble(decode(word, pc), pc);
}

TEST(Disasm, RegisterNames) {
  EXPECT_EQ(reg_name(0), "zero");
  EXPECT_EQ(reg_name(1), "ra");
  EXPECT_EQ(reg_name(2), "sp");
  EXPECT_EQ(reg_name(10), "a0");
  EXPECT_EQ(reg_name(31), "t6");
}

TEST(Disasm, BaseIsa) {
  EXPECT_EQ(dis(0x00510093), "addi ra, sp, 5");
  EXPECT_EQ(dis(0x005201b3), "add gp, tp, t0");
  EXPECT_EQ(dis(0x00812503), "lw a0, 8(sp)");
  EXPECT_EQ(dis(0x00a12623), "sw a0, 12(sp)");
  EXPECT_EQ(dis(0x00000073), "ecall");
  EXPECT_EQ(dis(0x010000ef, 0x100), "jal ra, 0x110");
  EXPECT_EQ(dis(0xfe208ee3, 0x100), "beq ra, sp, 0xfc");
}

TEST(Disasm, PulpExtensions) {
  Instr in;
  in.op = Mnemonic::kPLwPostImm;
  in.rd = 10;
  in.rs1 = 11;
  in.imm = 4;
  EXPECT_EQ(disassemble(in, 0), "p.lw! a0, 4(a1!)");

  in = Instr{};
  in.op = Mnemonic::kPvSdotusp;
  in.fmt = SimdFmt::kN;
  in.rd = 14;
  in.rs1 = 12;
  in.rs2 = 10;
  EXPECT_EQ(disassemble(in, 0), "pv.sdotusp.n a4, a2, a0");

  in.fmt = SimdFmt::kCSc;
  EXPECT_EQ(disassemble(in, 0), "pv.sdotusp.sc.c a4, a2, a0");

  in = Instr{};
  in.op = Mnemonic::kPvQnt;
  in.fmt = SimdFmt::kN;
  in.rd = 14;
  in.rs1 = 12;
  in.rs2 = 10;
  EXPECT_EQ(disassemble(in, 0), "pv.qnt.n a4, a2, (a0)");

  in = Instr{};
  in.op = Mnemonic::kLpSetupi;
  in.rs1 = 12;   // immediate count
  in.imm = 40;
  in.imm2 = 0;
  EXPECT_EQ(disassemble(in, 0x80), "lp.setupi x0, 12, 0xa8");

  in = Instr{};
  in.op = Mnemonic::kPExtract;
  in.rd = 10;
  in.rs1 = 11;
  in.imm2 = 7;   // Is3 (width-1)
  in.imm = 12;   // Is2 (position)
  EXPECT_EQ(disassemble(in, 0), "p.extract a0, a1, 7, 12");
}

TEST(Disasm, RoundTripThroughEncoder) {
  // Encoded words disassemble without throwing for the whole main table.
  Instr in;
  in.op = Mnemonic::kPMac;
  in.rd = 5;
  in.rs1 = 6;
  in.rs2 = 7;
  EXPECT_EQ(dis(encode(in)), "p.mac t0, t1, t2");
}

TEST(Disasm, FullDotpFamilyRoundTrip) {
  // Every pv.* dot-product mnemonic — uniform (all formats) and mixed
  // (format-free) — must encode, decode back to itself, and disassemble to
  // its exact mnemonic string.
  const std::pair<Mnemonic, std::string_view> uniform[] = {
      {Mnemonic::kPvDotup, "pv.dotup"},    {Mnemonic::kPvDotusp, "pv.dotusp"},
      {Mnemonic::kPvDotsp, "pv.dotsp"},    {Mnemonic::kPvSdotup, "pv.sdotup"},
      {Mnemonic::kPvSdotusp, "pv.sdotusp"}, {Mnemonic::kPvSdotsp, "pv.sdotsp"},
  };
  const std::pair<SimdFmt, std::string_view> fmts[] = {
      {SimdFmt::kB, ".b"}, {SimdFmt::kBSc, ".sc.b"}, {SimdFmt::kH, ".h"},
      {SimdFmt::kHSc, ".sc.h"}, {SimdFmt::kN, ".n"}, {SimdFmt::kNSc, ".sc.n"},
      {SimdFmt::kC, ".c"}, {SimdFmt::kCSc, ".sc.c"},
  };
  for (const auto& [op, name] : uniform) {
    for (const auto& [fmt, suffix] : fmts) {
      Instr in;
      in.op = op;
      in.fmt = fmt;
      in.rd = 14;
      in.rs1 = 12;
      in.rs2 = 10;
      const u32 word = encode(in);
      const Instr out = decode(word, 0);
      EXPECT_EQ(out.op, op);
      EXPECT_EQ(out.fmt, fmt);
      EXPECT_EQ(dis(word),
                std::string(name) + std::string(suffix) + " a4, a2, a0");
    }
  }

  const std::pair<Mnemonic, std::string_view> mixed[] = {
      {Mnemonic::kPvMldotup, "pv.mldotup"},
      {Mnemonic::kPvMldotusp, "pv.mldotusp"},
      {Mnemonic::kPvMldotsp, "pv.mldotsp"},
      {Mnemonic::kPvMlsdotup, "pv.mlsdotup"},
      {Mnemonic::kPvMlsdotusp, "pv.mlsdotusp"},
      {Mnemonic::kPvMlsdotsp, "pv.mlsdotsp"},
  };
  for (const auto& [op, name] : mixed) {
    Instr in;
    in.op = op;
    in.fmt = SimdFmt::kNone;  // widths come from the mpc CSR, not the word
    in.rd = 14;
    in.rs1 = 12;
    in.rs2 = 10;
    const u32 word = encode(in);
    const Instr out = decode(word, 0);
    EXPECT_EQ(out.op, op);
    EXPECT_EQ(out.fmt, SimdFmt::kNone);
    EXPECT_EQ(dis(word), std::string(name) + " a4, a2, a0");
  }
}

}  // namespace
}  // namespace xpulp::isa
