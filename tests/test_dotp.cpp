// Dot-product unit: all signedness variants and widths vs an independent
// scalar reference, accumulation semantics, and switching-activity
// bookkeeping under the power-management knob.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim_test_util.hpp"
#include "sim/dotp_unit.hpp"

namespace xpulp {
namespace {

namespace r = xasm::reg;
using isa::Mnemonic;
using isa::SimdFmt;
using test::run_program;

i64 ref_dot(Mnemonic op, SimdFmt fmt, u32 a, u32 b, i32 acc) {
  const unsigned n = isa::simd_elem_count(fmt);
  const bool a_signed = (op == Mnemonic::kPvDotsp || op == Mnemonic::kPvSdotsp);
  const bool b_signed = (op != Mnemonic::kPvDotup && op != Mnemonic::kPvSdotup);
  const bool accumulate = (op == Mnemonic::kPvSdotup ||
                           op == Mnemonic::kPvSdotusp ||
                           op == Mnemonic::kPvSdotsp);
  const u32 vb = sim::simd_operand_b(b, fmt);
  i64 s = accumulate ? acc : 0;
  for (unsigned i = 0; i < n; ++i) {
    s += static_cast<i64>(sim::simd_extract(a, fmt, i, a_signed)) *
         static_cast<i64>(sim::simd_extract(vb, fmt, i, b_signed));
  }
  return static_cast<i32>(s);
}

struct DotCase {
  Mnemonic op;
  SimdFmt fmt;
};

class DotProperty : public ::testing::TestWithParam<DotCase> {};

TEST_P(DotProperty, MatchesScalarReferenceOnCore) {
  const auto [op, fmt] = GetParam();
  Rng rng(0x5eed);
  for (int trial = 0; trial < 64; ++trial) {
    const u32 a = rng.next_u32();
    const u32 b = rng.next_u32();
    const i32 acc = static_cast<i32>(rng.next_u32());
    auto res = run_program([&](xasm::Assembler& as) {
      as.li(r::a0, static_cast<i32>(a));
      as.li(r::a1, static_cast<i32>(b));
      as.li(r::a2, acc);
      as.pv_op(op, fmt, r::a2, r::a0, r::a1);
    });
    ASSERT_EQ(static_cast<i32>(res.regs[r::a2]), ref_dot(op, fmt, a, b, acc))
        << mnemonic_name(op) << " a=0x" << std::hex << a << " b=0x" << b;
  }
}

std::vector<DotCase> dot_cases() {
  std::vector<DotCase> v;
  for (SimdFmt f : {SimdFmt::kB, SimdFmt::kBSc, SimdFmt::kH, SimdFmt::kHSc,
                    SimdFmt::kN, SimdFmt::kNSc, SimdFmt::kC, SimdFmt::kCSc}) {
    for (Mnemonic m : {Mnemonic::kPvDotup, Mnemonic::kPvDotusp,
                       Mnemonic::kPvDotsp, Mnemonic::kPvSdotup,
                       Mnemonic::kPvSdotusp, Mnemonic::kPvSdotsp}) {
      v.push_back({m, f});
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, DotProperty, ::testing::ValuesIn(dot_cases()),
    [](const ::testing::TestParamInfo<DotCase>& info) {
      std::string n{isa::mnemonic_name(info.param.op)};
      for (char& c : n) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n + "_f" + std::to_string(static_cast<int>(info.param.fmt));
    });

// ---- mixed virtual dot products (widths from the mpc CSR) ----

i64 ref_mixed(Mnemonic op, u32 sel, u32 a, u32 b, i32 acc) {
  const unsigned wa = isa::mixed_width_a(sel);
  const unsigned wb = isa::mixed_width_b(sel);
  const bool a_signed =
      (op == Mnemonic::kPvMldotsp || op == Mnemonic::kPvMlsdotsp);
  const bool b_signed =
      (op != Mnemonic::kPvMldotup && op != Mnemonic::kPvMlsdotup);
  const bool accumulate =
      (op == Mnemonic::kPvMlsdotup || op == Mnemonic::kPvMlsdotusp ||
       op == Mnemonic::kPvMlsdotsp);
  i64 s = accumulate ? acc : 0;
  for (unsigned i = 0; i < 32 / wa; ++i) {
    const u32 ra = (a >> (i * wa)) & low_mask(wa);
    const u32 rb = (b >> (i * wb)) & low_mask(wb);
    const i64 ea = a_signed ? sign_extend(ra, wa) : static_cast<i64>(ra);
    const i64 eb = b_signed ? sign_extend(rb, wb) : static_cast<i64>(rb);
    s += ea * eb;
  }
  return static_cast<i32>(s);
}

struct MixedDotCase {
  Mnemonic op;
  u32 sel;
};

class MixedDotProperty : public ::testing::TestWithParam<MixedDotCase> {};

TEST_P(MixedDotProperty, MatchesScalarReferenceOnCore) {
  const auto [op, sel] = GetParam();
  Rng rng(0x3eed + sel);
  for (int trial = 0; trial < 64; ++trial) {
    const u32 a = rng.next_u32();
    const u32 b = rng.next_u32();
    const i32 acc = static_cast<i32>(rng.next_u32());
    auto res = run_program([&](xasm::Assembler& as) {
      as.csrrwi(r::zero, isa::kMpcCsr, sel);
      as.li(r::a0, static_cast<i32>(a));
      as.li(r::a1, static_cast<i32>(b));
      as.li(r::a2, acc);
      as.pv_op(op, SimdFmt::kNone, r::a2, r::a0, r::a1);
    });
    const i32 want = static_cast<i32>(ref_mixed(op, sel, a, b, acc));
    ASSERT_EQ(static_cast<i32>(res.regs[r::a2]), want)
        << mnemonic_name(op) << " sel=" << sel << " a=0x" << std::hex << a
        << " b=0x" << b;
    // And the static reference routine agrees with the executing core.
    EXPECT_EQ(sim::DotpUnit::dotp_reference_mixed(op, sel, a, b, acc), want);
  }
}

std::vector<MixedDotCase> mixed_dot_cases() {
  std::vector<MixedDotCase> v;
  for (u32 sel = 0; sel < 3; ++sel) {
    for (Mnemonic m : {Mnemonic::kPvMldotup, Mnemonic::kPvMldotusp,
                       Mnemonic::kPvMldotsp, Mnemonic::kPvMlsdotup,
                       Mnemonic::kPvMlsdotusp, Mnemonic::kPvMlsdotsp}) {
      v.push_back({m, sel});
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    AllSelectors, MixedDotProperty, ::testing::ValuesIn(mixed_dot_cases()),
    [](const ::testing::TestParamInfo<MixedDotCase>& info) {
      std::string n{isa::mnemonic_name(info.param.op)};
      for (char& c : n) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n + "_sel" + std::to_string(info.param.sel);
    });

TEST(MixedDotp, KnownValues) {
  // sel 0 (8x4), mlsdotusp: activations {1,2,3,4} bytes, weights packed
  // nibbles {1,-1,1,-1} in the low half of rs2 (upper half ignored).
  auto res = run_program([](xasm::Assembler& a) {
    a.csrrwi(r::zero, isa::kMpcCsr, 0);
    a.li(r::a0, 0x04030201);
    a.li(r::a1, static_cast<i32>(0xDEADF1F1u));  // low nibbles 1,-1,1,-1
    a.li(r::a2, 100);
    a.pv_op(Mnemonic::kPvMlsdotusp, SimdFmt::kNone, r::a2, r::a0, r::a1);
  });
  // 100 + 1*1 + 2*(-1) + 3*1 + 4*(-1) = 98
  EXPECT_EQ(static_cast<i32>(res.regs[r::a2]), 98);

  // sel 2 (4x2), mldotsp overwrites rd: 8 signed nibbles x 8 signed crumbs.
  auto res2 = run_program([](xasm::Assembler& a) {
    a.csrrwi(r::zero, isa::kMpcCsr, 2);
    a.li(r::a0, static_cast<i32>(0xFFFFFFFFu));  // 8 lanes of -1
    a.li(r::a1, static_cast<i32>(0xDEAD5555u));  // low 16: 8 crumbs of 1
    a.li(r::a2, 12345);                          // ignored: plain dot
    a.pv_op(Mnemonic::kPvMldotsp, SimdFmt::kNone, r::a2, r::a0, r::a1);
  });
  EXPECT_EQ(static_cast<i32>(res2.regs[r::a2]), -8);
}

TEST(MixedDotp, ReferenceRejectsReservedSelector) {
  EXPECT_THROW(
      sim::DotpUnit::dotp_reference_mixed(Mnemonic::kPvMldotup, 3, 1, 1, 0),
      SimError);
}

TEST(Dotp, KnownValues) {
  // nibble dotusp: unsigned activations x signed weights.
  // a = lanes {1..8}? use 0x87654321: lanes 1,2,3,4,5,6,7,8.
  // b = 0xF1F1F1F1: lanes alternate +1 and -1 (signed nibble 0xF = -1).
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, static_cast<i32>(0x87654321u));
    a.li(r::a1, static_cast<i32>(0xF1F1F1F1u));
    a.li(r::a2, 0);
    a.pv_sdotusp(SimdFmt::kN, r::a2, r::a0, r::a1);
  });
  // 1*1 + 2*(-1) + 3*1 + 4*(-1) + 5*1 + 6*(-1) + 7*1 + 8*(-1) = -4
  EXPECT_EQ(static_cast<i32>(res.regs[r::a2]), -4);
}

TEST(Dotp, SixteenCrumbsPerOp) {
  // 2-bit dotup: all lanes 3 (0xFF... unsigned) x all lanes 1.
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, static_cast<i32>(0xFFFFFFFFu));  // 16 lanes of 3
    a.li(r::a1, static_cast<i32>(0x55555555u));  // 16 lanes of 1
    a.pv_dotup(SimdFmt::kC, r::a2, r::a0, r::a1);
  });
  EXPECT_EQ(res.regs[r::a2], 48u);
}

TEST(Dotp, AccumulatorChainsAcrossInstructions) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 0x01010101);  // 4 bytes of 1
    a.li(r::a1, 0x02020202);  // 4 bytes of 2
    a.li(r::a2, 1000);
    a.pv_sdotsp(SimdFmt::kB, r::a2, r::a0, r::a1);  // +8
    a.pv_sdotsp(SimdFmt::kB, r::a2, r::a0, r::a1);  // +8
    a.pv_sdotsp(SimdFmt::kB, r::a2, r::a0, r::a1);  // +8
  });
  EXPECT_EQ(res.regs[r::a2], 1024u);
}

TEST(Dotp, PerRegionOpCounters) {
  auto res = run_program([](xasm::Assembler& a) {
    a.pv_dotsp(SimdFmt::kH, r::a2, r::a0, r::a1);
    a.pv_dotsp(SimdFmt::kB, r::a2, r::a0, r::a1);
    a.pv_dotsp(SimdFmt::kB, r::a2, r::a0, r::a1);
    a.pv_dotsp(SimdFmt::kN, r::a2, r::a0, r::a1);
    a.pv_dotsp(SimdFmt::kC, r::a2, r::a0, r::a1);
    a.pv_dotsp(SimdFmt::kC, r::a2, r::a0, r::a1);
  });
  EXPECT_EQ(res.perf.dotp_ops[0], 1u);
  EXPECT_EQ(res.perf.dotp_ops[1], 2u);
  EXPECT_EQ(res.perf.dotp_ops[2], 1u);
  EXPECT_EQ(res.perf.dotp_ops[3], 2u);
  EXPECT_EQ(res.activity.ops[1], 2u);
}

TEST(Dotp, ClockGatingLimitsToggleScope) {
  sim::DotpUnit gated(true);
  // Two ops in the nibble region: only region 2 accumulates toggles.
  gated.dotp(Mnemonic::kPvDotup, SimdFmt::kN, 0xffffffffu, 0, 0);
  gated.dotp(Mnemonic::kPvDotup, SimdFmt::kN, 0x00000000u, 0, 0);
  EXPECT_EQ(gated.activity().operand_toggles[2], 64u);  // 32 + 32
  EXPECT_EQ(gated.activity().operand_toggles[0], 0u);
  EXPECT_EQ(gated.activity().operand_toggles[1], 0u);
  EXPECT_EQ(gated.activity().operand_toggles[3], 0u);

  sim::DotpUnit ungated(false);
  ungated.broadcast_operands(0xffffffffu, 0);
  ungated.broadcast_operands(0x00000000u, 0);
  for (unsigned reg = 0; reg < 4; ++reg) {
    EXPECT_EQ(ungated.activity().operand_toggles[reg], 64u);
  }
}

TEST(Dotp, UngatedCoreBroadcastsEveryInstruction) {
  auto cfg = sim::CoreConfig::extended();
  cfg.clock_gating = false;
  auto res = run_program(
      [](xasm::Assembler& a) {
        a.li(r::a0, -1);
        a.addi(r::a1, r::a0, 0);
        a.addi(r::a1, r::a0, 0);
      },
      cfg);
  // Operand bus toggles recorded in all four regions, not just one.
  EXPECT_GT(res.activity.operand_toggles[0], 0u);
  EXPECT_GT(res.activity.operand_toggles[3], 0u);

  auto res_gated = run_program([](xasm::Assembler& a) {
    a.li(r::a0, -1);
    a.addi(r::a1, r::a0, 0);
    a.addi(r::a1, r::a0, 0);
  });
  EXPECT_EQ(res_gated.activity.operand_toggles[0], 0u);
}

}  // namespace
}  // namespace xpulp
