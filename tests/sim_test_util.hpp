// Shared helpers for simulator tests: assemble a small program with a
// builder callback, run it on a configured core, and expose the final
// machine state.
#pragma once

#include <functional>

#include "mem/memory.hpp"
#include "sim/core.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::test {

struct RunResult {
  mem::Memory mem;
  sim::PerfCounters perf;
  std::array<u32, 32> regs{};
  sim::HaltReason reason = sim::HaltReason::kRunning;
  sim::DotpActivity activity;
};

/// Assemble `body(asm)`, append ecall, run to halt; `setup` may preload
/// memory or registers before execution.
inline RunResult run_program(
    const std::function<void(xasm::Assembler&)>& body,
    sim::CoreConfig cfg = sim::CoreConfig::extended(),
    const std::function<void(mem::Memory&, sim::Core&)>& setup = {}) {
  xasm::Assembler a(0);
  body(a);
  a.ecall();
  xasm::Program prog = a.finish();

  RunResult r;
  prog.load(r.mem);
  sim::Core core(r.mem, std::move(cfg));
  core.reset(prog.entry());
  if (setup) setup(r.mem, core);
  r.reason = core.run(100'000'000);
  for (unsigned i = 0; i < 32; ++i) r.regs[i] = core.reg(i);
  r.perf = core.perf();
  r.activity = core.dotp_unit().activity();
  return r;
}

}  // namespace xpulp::test
