// Packed-SIMD semantics for all four element widths (b/h from XpulpV2, n/c
// from XpulpNN), checked property-style against an independent per-element
// reference built on simd_extract/simd_insert.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim_test_util.hpp"
#include "sim/dotp_unit.hpp"

namespace xpulp {
namespace {

namespace r = xasm::reg;
using isa::Mnemonic;
using isa::SimdFmt;
using test::run_program;

/// Independent element-wise model (deliberately written differently from
/// DotpUnit::alu_op: extract, compute in i64, mask back).
u32 ref_elemwise(Mnemonic op, SimdFmt fmt, u32 a, u32 b) {
  const unsigned w = isa::simd_elem_bits(fmt);
  const unsigned n = isa::simd_elem_count(fmt);
  const u32 vb = sim::simd_operand_b(b, fmt);
  u32 out = 0;
  for (unsigned i = 0; i < n; ++i) {
    const i64 sa = sim::simd_extract(a, fmt, i, true);
    const i64 sb = sim::simd_extract(vb, fmt, i, true);
    const u64 ua = static_cast<u32>(sim::simd_extract(a, fmt, i, false));
    const u64 ub = static_cast<u32>(sim::simd_extract(vb, fmt, i, false));
    i64 v = 0;
    switch (op) {
      case Mnemonic::kPvAdd: v = sa + sb; break;
      case Mnemonic::kPvSub: v = sa - sb; break;
      case Mnemonic::kPvAvg: v = (sa + sb) >> 1; break;
      case Mnemonic::kPvAvgu: v = static_cast<i64>((ua + ub) >> 1); break;
      case Mnemonic::kPvMax: v = std::max(sa, sb); break;
      case Mnemonic::kPvMaxu: v = static_cast<i64>(std::max(ua, ub)); break;
      case Mnemonic::kPvMin: v = std::min(sa, sb); break;
      case Mnemonic::kPvMinu: v = static_cast<i64>(std::min(ua, ub)); break;
      case Mnemonic::kPvSrl: v = static_cast<i64>(ua >> (ub & (w - 1))); break;
      case Mnemonic::kPvSra: v = sa >> (ub & (w - 1)); break;
      case Mnemonic::kPvSll: v = static_cast<i64>(ua << (ub & (w - 1))); break;
      case Mnemonic::kPvAbs: v = sa < 0 ? -sa : sa; break;
      case Mnemonic::kPvAnd: v = sa & sb; break;
      case Mnemonic::kPvOr: v = sa | sb; break;
      case Mnemonic::kPvXor: v = sa ^ sb; break;
      default: ADD_FAILURE(); break;
    }
    out = sim::simd_insert(out, fmt, i, static_cast<u32>(v));
  }
  return out;
}

struct SimdCase {
  Mnemonic op;
  SimdFmt fmt;
};

class SimdAluProperty : public ::testing::TestWithParam<SimdCase> {};

TEST_P(SimdAluProperty, MatchesElementwiseReferenceOnCore) {
  const auto [op, fmt] = GetParam();
  Rng rng(0xabcdef);
  for (int trial = 0; trial < 64; ++trial) {
    const u32 a = rng.next_u32();
    const u32 b = rng.next_u32();
    auto res = run_program([&](xasm::Assembler& as) {
      as.li(r::a0, static_cast<i32>(a));
      as.li(r::a1, static_cast<i32>(b));
      as.pv_op(op, fmt, r::a2, r::a0, op == Mnemonic::kPvAbs ? 0 : r::a1);
    });
    const u32 expect =
        ref_elemwise(op, fmt, a, op == Mnemonic::kPvAbs ? 0 : b);
    ASSERT_EQ(res.regs[r::a2], expect)
        << mnemonic_name(op) << " fmt=" << static_cast<int>(fmt) << " a=0x"
        << std::hex << a << " b=0x" << b;
  }
}

std::vector<SimdCase> all_simd_cases() {
  std::vector<SimdCase> v;
  for (SimdFmt f : {SimdFmt::kB, SimdFmt::kBSc, SimdFmt::kH, SimdFmt::kHSc,
                    SimdFmt::kN, SimdFmt::kNSc, SimdFmt::kC, SimdFmt::kCSc}) {
    for (Mnemonic m : {Mnemonic::kPvAdd, Mnemonic::kPvSub, Mnemonic::kPvAvg,
                       Mnemonic::kPvAvgu, Mnemonic::kPvMax, Mnemonic::kPvMaxu,
                       Mnemonic::kPvMin, Mnemonic::kPvMinu, Mnemonic::kPvSrl,
                       Mnemonic::kPvSra, Mnemonic::kPvSll, Mnemonic::kPvAbs,
                       Mnemonic::kPvAnd, Mnemonic::kPvOr, Mnemonic::kPvXor}) {
      v.push_back({m, f});
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAllFormats, SimdAluProperty, ::testing::ValuesIn(all_simd_cases()),
    [](const ::testing::TestParamInfo<SimdCase>& info) {
      std::string n{isa::mnemonic_name(info.param.op)};
      for (char& c : n) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n + "_f" + std::to_string(static_cast<int>(info.param.fmt));
    });

TEST(Simd, KnownNibbleVectors) {
  // pv.add.n: per-lane wraparound at 4 bits.
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, static_cast<i32>(0x7F7F7F7Fu));  // lanes 7,15 alternating
    a.li(r::a1, static_cast<i32>(0x11111111u));  // +1 each lane
    a.pv_add(SimdFmt::kN, r::a2, r::a0, r::a1);
    a.pv_maxu(SimdFmt::kN, r::a3, r::a0, r::a1);
    a.pv_sra(SimdFmt::kN, r::a4, r::a0, r::a1);  // >>1 arithmetic per lane
  });
  EXPECT_EQ(res.regs[r::a2], 0x80808080u);  // 7+1=8, 15+1=0 (wrap)
  EXPECT_EQ(res.regs[r::a3], 0x7F7F7F7Fu);
  // lane f (=-1) >> 1 = -1 = 0xf; lane 7 >> 1 = 3.
  EXPECT_EQ(res.regs[r::a4], 0x3F3F3F3Fu);
}

TEST(Simd, ScalarReplicationUsesLaneZero) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, static_cast<i32>(0x01020304u));
    a.li(r::a1, static_cast<i32>(0xFFFFFF02u));  // lane0 of rs2 = 2
    a.pv_add(SimdFmt::kBSc, r::a2, r::a0, r::a1);
  });
  EXPECT_EQ(res.regs[r::a2], 0x03040506u);
}

TEST(Simd, BaselineCoreRejectsSubByteFormats) {
  EXPECT_THROW(run_program(
                   [](xasm::Assembler& a) {
                     a.pv_add(isa::SimdFmt::kN, r::a0, r::a1, r::a2);
                   },
                   sim::CoreConfig::ri5cy()),
               IllegalInstruction);
  EXPECT_THROW(run_program(
                   [](xasm::Assembler& a) {
                     a.pv_sdotusp(isa::SimdFmt::kC, r::a0, r::a1, r::a2);
                   },
                   sim::CoreConfig::ri5cy()),
               IllegalInstruction);
  // ... but byte/halfword SIMD is XpulpV2 and must work.
  auto res = run_program(
      [](xasm::Assembler& a) {
        a.li(r::a0, 0x01010101);
        a.li(r::a1, 0x02020202);
        a.pv_add(isa::SimdFmt::kB, r::a2, r::a0, r::a1);
      },
      sim::CoreConfig::ri5cy());
  EXPECT_EQ(res.regs[r::a2], 0x03030303u);
}

}  // namespace
}  // namespace xpulp
