// Differential test between the interpreter dispatch modes: the legacy
// switch-on-mnemonic reference path, the predecoded handler-table fast
// path and the superblock engine (fused hot-loop bursts on top of the fast
// path) must produce bit-identical architectural state, memory images,
// halt reasons and *every* PerfCounters field — the faster paths are
// optimizations of the host interpreter, never of the modelled RI5CY
// timing.
#include <gtest/gtest.h>

#include <vector>

#include "diff_test_util.hpp"
#include "isa/encoding.hpp"
#include "kernels/conv_layer.hpp"
#include "mem/memory.hpp"
#include "sim/core.hpp"
#include "sim_test_util.hpp"
#include "xasm/assembler.hpp"

namespace xpulp {
namespace {

using test::expect_identical;
using test::FinalState;
using test::random_program;
using test::run_mode;
using test::run_mode_superblock;

TEST(DispatchDiff, RandomProgramsBitIdentical) {
  for (u64 trial = 0; trial < 25; ++trial) {
    const xasm::Program prog = random_program(0xd15b07c4 + trial * 977);
    const auto ref = run_mode(prog, sim::CoreConfig::extended(), true);
    const auto fast = run_mode(prog, sim::CoreConfig::extended(), false);
    const auto sb = run_mode_superblock(prog, sim::CoreConfig::extended());
    ASSERT_EQ(ref.reason, sim::HaltReason::kEcall) << "trial " << trial;
    expect_identical(ref, fast);
    expect_identical(ref, sb);
    if (::testing::Test::HasFailure()) FAIL() << "diverged at trial " << trial;
  }
}

TEST(DispatchDiff, Ri5cyConfigBitIdentical) {
  // The baseline core rejects XpulpNN ops; both modes must also agree on
  // *which* instruction faults (feature guard vs require() chains).
  for (u64 trial = 0; trial < 10; ++trial) {
    const xasm::Program prog = random_program(0xace0 + trial * 131);
    sim::CoreConfig cfg = sim::CoreConfig::ri5cy();
    FinalState ref, fast;
    bool ref_threw = false, fast_threw = false;
    addr_t ref_pc = 0, fast_pc = 0;
    try {
      ref = run_mode(prog, cfg, true);
    } catch (const IllegalInstruction& e) {
      ref_threw = true;
      ref_pc = e.pc();
    }
    try {
      fast = run_mode(prog, cfg, false);
    } catch (const IllegalInstruction& e) {
      fast_threw = true;
      fast_pc = e.pc();
    }
    ASSERT_EQ(ref_threw, fast_threw) << "trial " << trial;
    if (ref_threw) {
      EXPECT_EQ(ref_pc, fast_pc) << "trial " << trial;
    } else {
      expect_identical(ref, fast);
    }
  }
}

TEST(DispatchDiff, InstructionLimitSemanticsMatch) {
  // Hitting the instruction limit must report the same counters and halt
  // reason in both modes, including the corner where the limiting step
  // also executed an ecall.
  xasm::Assembler a(0);
  for (int i = 0; i < 50; ++i) a.addi(5, 5, 1);
  a.ecall();
  const xasm::Program prog = a.finish();
  for (u64 limit : {1ull, 7ull, 50ull, 51ull, 52ull}) {
    const auto ref = run_mode(prog, sim::CoreConfig::extended(), true, limit);
    const auto fast =
        run_mode(prog, sim::CoreConfig::extended(), false, limit);
    expect_identical(ref, fast);
  }
}

TEST(DispatchDiff, ConvKernelVariantsBitIdentical) {
  // The paper's conv layer (reduced spatially to keep the test fast) under
  // every kernel variant: registers aside, the cycle-level counters feed
  // every figure reproduction, so they must not move with dispatch mode.
  using kernels::ConvVariant;
  for (ConvVariant v :
       {ConvVariant::kXpulpV2_8b, ConvVariant::kXpulpV2_Sub,
        ConvVariant::kXpulpV2_SubShf, ConvVariant::kXpulpNN_SwQ,
        ConvVariant::kXpulpNN_HwQ}) {
    qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(
        v == ConvVariant::kXpulpV2_8b ? 8 : 4);
    spec.in_h = spec.in_w = 4;
    spec.out_c = 8;
    const auto data = kernels::ConvLayerData::random(spec, 0x5eed);

    sim::CoreConfig ref_cfg = sim::CoreConfig::extended();
    ref_cfg.reference_dispatch = true;
    sim::CoreConfig fast_cfg = sim::CoreConfig::extended();
    fast_cfg.superblock = false;
    sim::CoreConfig sb_cfg = sim::CoreConfig::extended();
    sb_cfg.superblock = true;

    const auto ref = kernels::run_conv_layer(data, v, ref_cfg);
    const auto fast = kernels::run_conv_layer(data, v, fast_cfg);
    const auto sb = kernels::run_conv_layer(data, v, sb_cfg);

    for (const auto* r : {&fast, &sb}) {
      EXPECT_EQ(ref.perf.cycles, r->perf.cycles) << kernels::variant_name(v);
      EXPECT_EQ(ref.perf.instructions, r->perf.instructions);
      EXPECT_EQ(ref.perf.hwloop_backedges, r->perf.hwloop_backedges);
      EXPECT_EQ(ref.perf.load_use_stall_cycles,
                r->perf.load_use_stall_cycles);
      EXPECT_EQ(ref.perf.qnt_stall_cycles, r->perf.qnt_stall_cycles);
      EXPECT_EQ(ref.perf.dotp_ops, r->perf.dotp_ops);
      EXPECT_EQ(ref.perf.lsu_data_toggles, r->perf.lsu_data_toggles);
      EXPECT_EQ(ref.quant_cycles, r->quant_cycles);
      EXPECT_EQ(ref.output.data(), r->output.data())
          << kernels::variant_name(v);
    }
  }
}

TEST(DispatchDiff, SelfModifyingCodePicksUpPatch) {
  // A store over an already-executed (and therefore decode-cached)
  // instruction must invalidate the cached decode: the patched instruction
  // executes on the next pass. Regression test for decode-cache coherence.
  auto build = [](addr_t target_guess) {
    // `addi a0, a0, 100` — the word the program patches over the target.
    isa::Instr patch;
    patch.op = isa::Mnemonic::kAddi;
    patch.rd = 10;
    patch.rs1 = 10;
    patch.imm = 100;
    const u32 patch_word = isa::encode(patch);

    xasm::Assembler a(0);
    a.li(xasm::reg::a0, 0);
    a.li(xasm::reg::t2, 0);
    a.li(xasm::reg::t0, static_cast<i32>(target_guess));
    a.li(xasm::reg::t1, static_cast<i32>(patch_word));
    xasm::Assembler::Label target = a.here();
    a.addi(xasm::reg::a0, xasm::reg::a0, 1);  // patched to +100 at run time
    const xasm::Assembler::Label do_patch = a.new_label();
    a.beq(xasm::reg::t2, 0, do_patch);
    a.ecall();
    a.bind(do_patch);
    a.addi(xasm::reg::t2, 0, 1);
    a.sw(xasm::reg::t1, xasm::reg::t0, 0);  // overwrite the target instr
    a.j(target);
    return a.finish();
  };

  // Two-pass assembly: measure the target address with a placeholder
  // value, then rebuild with the real one (both values fit 12 bits, so the
  // li expansion — and therefore the code layout — is stable).
  const addr_t target_addr = [&] {
    isa::Instr patch;
    patch.op = isa::Mnemonic::kAddi;
    patch.rd = 10;
    patch.rs1 = 10;
    patch.imm = 100;
    // li of the patch word takes lui+addi; replicate to find the offset.
    xasm::Assembler a2(0);
    a2.li(xasm::reg::a0, 0);
    a2.li(xasm::reg::t2, 0);
    a2.li(xasm::reg::t0, 64);
    a2.li(xasm::reg::t1, static_cast<i32>(isa::encode(patch)));
    return static_cast<addr_t>(a2.finish().size_bytes());
  }();

  const xasm::Program prog = build(target_addr);
  for (int mode = 0; mode < 3; ++mode) {
    const auto s = mode < 2
                       ? run_mode(prog, sim::CoreConfig::extended(), mode == 0)
                       : run_mode_superblock(prog, sim::CoreConfig::extended());
    ASSERT_EQ(s.reason, sim::HaltReason::kEcall);
    // First pass adds 1, patched second pass adds 100.
    static const char* kModes[] = {"reference", "fast", "superblock"};
    EXPECT_EQ(s.regs[10], 101u)
        << kModes[mode] << " dispatch executed stale decode after "
        << "self-modifying store";
  }
}

TEST(DispatchDiff, SelfModifyingStoreIntoHotLoopBody) {
  // The harder SMC shape for the superblock engine: a hardware loop whose
  // body stores over *its own* instructions every iteration. The store must
  // invalidate both the decode cache and the live superblock plan, and the
  // patched instruction must take effect on the very next iteration — in
  // all three dispatch modes, bit-identically.
  isa::Instr patch;
  patch.op = isa::Mnemonic::kAddi;
  patch.rd = 10;
  patch.rs1 = 10;
  patch.imm = 100;
  const u32 patch_word = isa::encode(patch);

  auto build = [&](addr_t target_guess, addr_t* target_out) {
    xasm::Assembler a(0);
    a.li(xasm::reg::a0, 0);
    a.li(xasm::reg::t0, static_cast<i32>(target_guess));
    a.li(xasm::reg::t1, static_cast<i32>(patch_word));
    const xasm::Assembler::Label end = a.new_label();
    a.lp_setupi(0, 30, end);
    *target_out = a.current_addr();
    a.addi(xasm::reg::a0, xasm::reg::a0, 1);  // patched to +100, iter 1
    a.sw(xasm::reg::t1, xasm::reg::t0, 0);    // store over the addi above
    a.bind(end);
    a.ecall();
    return a.finish();
  };

  // Two-pass assembly: both the guess and the real target fit 12 bits, so
  // the li expansion (and with it the layout) is identical across passes.
  addr_t target_addr = 0;
  build(64, &target_addr);
  addr_t check = 0;
  const xasm::Program prog = build(target_addr, &check);
  ASSERT_EQ(check, target_addr);

  // Iteration 1 adds 1 and patches; iterations 2..30 add 100 each.
  constexpr u32 kExpected = 1 + 29 * 100;
  const auto ref = run_mode(prog, sim::CoreConfig::extended(), true);
  ASSERT_EQ(ref.reason, sim::HaltReason::kEcall);
  ASSERT_EQ(ref.regs[10], kExpected);
  expect_identical(ref, run_mode(prog, sim::CoreConfig::extended(), false));
  expect_identical(ref, run_mode_superblock(prog, sim::CoreConfig::extended()));

  // The superblock engine must actually have been hit by the store: the
  // hot hwloop compiles, and the self-modifying store evicts the plan.
  sim::CoreConfig cfg = sim::CoreConfig::extended();
  cfg.superblock = true;
  mem::Memory mem;
  prog.load(mem);
  sim::Core core(mem, cfg);
  core.reset(prog.entry(), prog.base() + prog.size_bytes());
  ASSERT_EQ(core.run(2'000'000), sim::HaltReason::kEcall);
  EXPECT_EQ(core.reg(10), kExpected);
  EXPECT_GT(core.superblock_stats().blocks_compiled, 0u);
  EXPECT_GT(core.superblock_stats().invalidations, 0u);
}

TEST(DispatchDiff, DecodeCacheGrowthCoversWidePrograms) {
  // A program whose code straddles far beyond the initial 4096-entry cache
  // (geometric growth path) and is entered without a pre-sized cache.
  xasm::Assembler a(0);
  const xasm::Assembler::Label far = a.new_label();
  a.li(xasm::reg::a0, 7);
  a.j(far);
  for (int i = 0; i < 8000; ++i) a.addi(5, 5, 1);  // 32 KB of filler
  a.bind(far);
  a.addi(xasm::reg::a0, xasm::reg::a0, 35);
  a.ecall();
  const xasm::Program prog = a.finish();

  mem::Memory mem;
  prog.load(mem);
  sim::Core core(mem);
  core.reset(prog.entry());  // no code_end: exercise growth, not pre-size
  ASSERT_EQ(core.run(1000), sim::HaltReason::kEcall);
  EXPECT_EQ(core.reg(10), 42u);
}

}  // namespace
}  // namespace xpulp
