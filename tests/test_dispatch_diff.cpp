// Differential test between the two interpreter dispatch modes: the legacy
// switch-on-mnemonic reference path and the predecoded handler-table fast
// path must produce bit-identical architectural state, memory images, halt
// reasons and *every* PerfCounters field — the fast path is an optimization
// of the host interpreter, never of the modelled RI5CY timing.
#include <gtest/gtest.h>

#include <vector>

#include "diff_test_util.hpp"
#include "isa/encoding.hpp"
#include "kernels/conv_layer.hpp"
#include "mem/memory.hpp"
#include "sim/core.hpp"
#include "sim_test_util.hpp"
#include "xasm/assembler.hpp"

namespace xpulp {
namespace {

using test::expect_identical;
using test::FinalState;
using test::random_program;
using test::run_mode;

TEST(DispatchDiff, RandomProgramsBitIdentical) {
  for (u64 trial = 0; trial < 25; ++trial) {
    const xasm::Program prog = random_program(0xd15b07c4 + trial * 977);
    const auto ref = run_mode(prog, sim::CoreConfig::extended(), true);
    const auto fast = run_mode(prog, sim::CoreConfig::extended(), false);
    ASSERT_EQ(ref.reason, sim::HaltReason::kEcall) << "trial " << trial;
    expect_identical(ref, fast);
    if (::testing::Test::HasFailure()) FAIL() << "diverged at trial " << trial;
  }
}

TEST(DispatchDiff, Ri5cyConfigBitIdentical) {
  // The baseline core rejects XpulpNN ops; both modes must also agree on
  // *which* instruction faults (feature guard vs require() chains).
  for (u64 trial = 0; trial < 10; ++trial) {
    const xasm::Program prog = random_program(0xace0 + trial * 131);
    sim::CoreConfig cfg = sim::CoreConfig::ri5cy();
    FinalState ref, fast;
    bool ref_threw = false, fast_threw = false;
    addr_t ref_pc = 0, fast_pc = 0;
    try {
      ref = run_mode(prog, cfg, true);
    } catch (const IllegalInstruction& e) {
      ref_threw = true;
      ref_pc = e.pc();
    }
    try {
      fast = run_mode(prog, cfg, false);
    } catch (const IllegalInstruction& e) {
      fast_threw = true;
      fast_pc = e.pc();
    }
    ASSERT_EQ(ref_threw, fast_threw) << "trial " << trial;
    if (ref_threw) {
      EXPECT_EQ(ref_pc, fast_pc) << "trial " << trial;
    } else {
      expect_identical(ref, fast);
    }
  }
}

TEST(DispatchDiff, InstructionLimitSemanticsMatch) {
  // Hitting the instruction limit must report the same counters and halt
  // reason in both modes, including the corner where the limiting step
  // also executed an ecall.
  xasm::Assembler a(0);
  for (int i = 0; i < 50; ++i) a.addi(5, 5, 1);
  a.ecall();
  const xasm::Program prog = a.finish();
  for (u64 limit : {1ull, 7ull, 50ull, 51ull, 52ull}) {
    const auto ref = run_mode(prog, sim::CoreConfig::extended(), true, limit);
    const auto fast =
        run_mode(prog, sim::CoreConfig::extended(), false, limit);
    expect_identical(ref, fast);
  }
}

TEST(DispatchDiff, ConvKernelVariantsBitIdentical) {
  // The paper's conv layer (reduced spatially to keep the test fast) under
  // every kernel variant: registers aside, the cycle-level counters feed
  // every figure reproduction, so they must not move with dispatch mode.
  using kernels::ConvVariant;
  for (ConvVariant v :
       {ConvVariant::kXpulpV2_8b, ConvVariant::kXpulpV2_Sub,
        ConvVariant::kXpulpV2_SubShf, ConvVariant::kXpulpNN_SwQ,
        ConvVariant::kXpulpNN_HwQ}) {
    qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(
        v == ConvVariant::kXpulpV2_8b ? 8 : 4);
    spec.in_h = spec.in_w = 4;
    spec.out_c = 8;
    const auto data = kernels::ConvLayerData::random(spec, 0x5eed);

    sim::CoreConfig ref_cfg = sim::CoreConfig::extended();
    ref_cfg.reference_dispatch = true;
    sim::CoreConfig fast_cfg = sim::CoreConfig::extended();

    const auto ref = kernels::run_conv_layer(data, v, ref_cfg);
    const auto fast = kernels::run_conv_layer(data, v, fast_cfg);

    EXPECT_EQ(ref.perf.cycles, fast.perf.cycles) << kernels::variant_name(v);
    EXPECT_EQ(ref.perf.instructions, fast.perf.instructions);
    EXPECT_EQ(ref.perf.hwloop_backedges, fast.perf.hwloop_backedges);
    EXPECT_EQ(ref.perf.load_use_stall_cycles, fast.perf.load_use_stall_cycles);
    EXPECT_EQ(ref.perf.qnt_stall_cycles, fast.perf.qnt_stall_cycles);
    EXPECT_EQ(ref.perf.dotp_ops, fast.perf.dotp_ops);
    EXPECT_EQ(ref.perf.lsu_data_toggles, fast.perf.lsu_data_toggles);
    EXPECT_EQ(ref.quant_cycles, fast.quant_cycles);
    EXPECT_EQ(ref.output.data(), fast.output.data())
        << kernels::variant_name(v);
  }
}

TEST(DispatchDiff, SelfModifyingCodePicksUpPatch) {
  // A store over an already-executed (and therefore decode-cached)
  // instruction must invalidate the cached decode: the patched instruction
  // executes on the next pass. Regression test for decode-cache coherence.
  auto build = [](addr_t target_guess) {
    // `addi a0, a0, 100` — the word the program patches over the target.
    isa::Instr patch;
    patch.op = isa::Mnemonic::kAddi;
    patch.rd = 10;
    patch.rs1 = 10;
    patch.imm = 100;
    const u32 patch_word = isa::encode(patch);

    xasm::Assembler a(0);
    a.li(xasm::reg::a0, 0);
    a.li(xasm::reg::t2, 0);
    a.li(xasm::reg::t0, static_cast<i32>(target_guess));
    a.li(xasm::reg::t1, static_cast<i32>(patch_word));
    xasm::Assembler::Label target = a.here();
    a.addi(xasm::reg::a0, xasm::reg::a0, 1);  // patched to +100 at run time
    const xasm::Assembler::Label do_patch = a.new_label();
    a.beq(xasm::reg::t2, 0, do_patch);
    a.ecall();
    a.bind(do_patch);
    a.addi(xasm::reg::t2, 0, 1);
    a.sw(xasm::reg::t1, xasm::reg::t0, 0);  // overwrite the target instr
    a.j(target);
    return a.finish();
  };

  // Two-pass assembly: measure the target address with a placeholder
  // value, then rebuild with the real one (both values fit 12 bits, so the
  // li expansion — and therefore the code layout — is stable).
  const addr_t target_addr = [&] {
    isa::Instr patch;
    patch.op = isa::Mnemonic::kAddi;
    patch.rd = 10;
    patch.rs1 = 10;
    patch.imm = 100;
    // li of the patch word takes lui+addi; replicate to find the offset.
    xasm::Assembler a2(0);
    a2.li(xasm::reg::a0, 0);
    a2.li(xasm::reg::t2, 0);
    a2.li(xasm::reg::t0, 64);
    a2.li(xasm::reg::t1, static_cast<i32>(isa::encode(patch)));
    return static_cast<addr_t>(a2.finish().size_bytes());
  }();

  const xasm::Program prog = build(target_addr);
  for (bool reference : {false, true}) {
    const auto s = run_mode(prog, sim::CoreConfig::extended(), reference);
    ASSERT_EQ(s.reason, sim::HaltReason::kEcall);
    // First pass adds 1, patched second pass adds 100.
    EXPECT_EQ(s.regs[10], 101u)
        << (reference ? "reference" : "fast") << " dispatch executed stale "
        << "decode after self-modifying store";
  }
}

TEST(DispatchDiff, DecodeCacheGrowthCoversWidePrograms) {
  // A program whose code straddles far beyond the initial 4096-entry cache
  // (geometric growth path) and is entered without a pre-sized cache.
  xasm::Assembler a(0);
  const xasm::Assembler::Label far = a.new_label();
  a.li(xasm::reg::a0, 7);
  a.j(far);
  for (int i = 0; i < 8000; ++i) a.addi(5, 5, 1);  // 32 KB of filler
  a.bind(far);
  a.addi(xasm::reg::a0, xasm::reg::a0, 35);
  a.ecall();
  const xasm::Program prog = a.finish();

  mem::Memory mem;
  prog.load(mem);
  sim::Core core(mem);
  core.reset(prog.entry());  // no code_end: exercise growth, not pre-size
  ASSERT_EQ(core.run(1000), sim::HaltReason::kEcall);
  EXPECT_EQ(core.reg(10), 42u);
}

}  // namespace
}  // namespace xpulp
