// Differential test between the two interpreter dispatch modes: the legacy
// switch-on-mnemonic reference path and the predecoded handler-table fast
// path must produce bit-identical architectural state, memory images, halt
// reasons and *every* PerfCounters field — the fast path is an optimization
// of the host interpreter, never of the modelled RI5CY timing.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "isa/encoding.hpp"
#include "kernels/conv_layer.hpp"
#include "mem/memory.hpp"
#include "sim/core.hpp"
#include "sim_test_util.hpp"
#include "xasm/assembler.hpp"

namespace xpulp {
namespace {

struct FinalState {
  std::array<u32, 32> regs{};
  addr_t pc = 0;
  sim::HaltReason reason = sim::HaltReason::kRunning;
  sim::PerfCounters perf;
  std::vector<u8> mem;
};

FinalState run_mode(const xasm::Program& prog, sim::CoreConfig cfg,
                    bool reference, u64 max_instr = 2'000'000) {
  cfg.reference_dispatch = reference;
  FinalState s;
  mem::Memory mem;
  prog.load(mem);
  sim::Core core(mem, std::move(cfg));
  core.reset(prog.entry(), prog.base() + prog.size_bytes());
  s.reason = core.run(max_instr);
  s.pc = core.pc();
  for (unsigned i = 0; i < 32; ++i) s.regs[i] = core.reg(i);
  s.perf = core.perf();
  s.mem.resize(mem.size());
  mem.read_block(0, s.mem);
  return s;
}

void expect_identical(const FinalState& ref, const FinalState& fast) {
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(ref.regs[i], fast.regs[i]) << "x" << i;
  }
  EXPECT_EQ(ref.pc, fast.pc);
  EXPECT_EQ(ref.reason, fast.reason);
  EXPECT_EQ(ref.mem, fast.mem);

  const sim::PerfCounters& a = ref.perf;
  const sim::PerfCounters& b = fast.perf;
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.taken_branches, b.taken_branches);
  EXPECT_EQ(a.not_taken_branches, b.not_taken_branches);
  EXPECT_EQ(a.jumps, b.jumps);
  EXPECT_EQ(a.branch_stall_cycles, b.branch_stall_cycles);
  EXPECT_EQ(a.load_use_stall_cycles, b.load_use_stall_cycles);
  EXPECT_EQ(a.mem_stall_cycles, b.mem_stall_cycles);
  EXPECT_EQ(a.mul_div_stall_cycles, b.mul_div_stall_cycles);
  EXPECT_EQ(a.hwloop_backedges, b.hwloop_backedges);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.scalar_alu_ops, b.scalar_alu_ops);
  EXPECT_EQ(a.mul_ops, b.mul_ops);
  EXPECT_EQ(a.div_ops, b.div_ops);
  EXPECT_EQ(a.simd_alu_ops, b.simd_alu_ops);
  EXPECT_EQ(a.qnt_ops, b.qnt_ops);
  EXPECT_EQ(a.qnt_stall_cycles, b.qnt_stall_cycles);
  EXPECT_EQ(a.csr_ops, b.csr_ops);
  EXPECT_EQ(a.sys_ops, b.sys_ops);
  EXPECT_EQ(a.mac_ops, b.mac_ops);
  EXPECT_EQ(a.dotp_ops, b.dotp_ops);
  EXPECT_EQ(a.lsu_data_toggles, b.lsu_data_toggles);
}

/// One random instruction into the current basic block. Destinations avoid
/// s0/s1 (x8/x9): they anchor the only legal data pointers.
void random_op(xasm::Assembler& a, Rng& rng) {
  static constexpr u8 kDests[] = {5, 6, 7, 10, 11, 12, 13, 14, 15};
  const u8 rd = kDests[rng.uniform(0, 8)];
  const u8 rs1 = static_cast<u8>(rng.uniform(5, 15));
  const u8 rs2 = kDests[rng.uniform(0, 8)];
  switch (rng.uniform(0, 22)) {
    case 0: a.add(rd, rs1, rs2); break;
    case 1: a.sub(rd, rs1, rs2); break;
    case 2: a.mul(rd, rs1, rs2); break;
    case 3: a.mulh(rd, rs1, rs2); break;
    case 4: a.div(rd, rs1, rs2); break;
    case 5: a.remu(rd, rs1, rs2); break;
    case 6: a.p_max(rd, rs1, rs2); break;
    case 7: a.p_mac(rd, rs1, rs2); break;
    case 8: a.pv_add(isa::SimdFmt::kN, rd, rs1, rs2); break;
    case 9: a.pv_sdotusp(isa::SimdFmt::kC, rd, rs1, rs2); break;
    case 10: a.pv_sdotsp(isa::SimdFmt::kB, rd, rs1, rs2); break;
    case 11: a.pv_shuffle(isa::SimdFmt::kB, rd, rs1, rs2); break;
    // Loads feed the load-use hazard model; keep them frequent.
    case 12: a.lw(rd, xasm::reg::s0, rng.uniform(0, 500) * 4); break;
    case 13: a.lbu(rd, xasm::reg::s0, rng.uniform(0, 2000)); break;
    case 14: a.sw(rd, xasm::reg::s0, rng.uniform(0, 500) * 4); break;
    case 15: a.p_extractu(rd, rs1, 1 + rng.uniform(0, 7),
                          rng.uniform(0, 24)); break;
    case 16: a.srai(rd, rs1, static_cast<u32>(rng.uniform(0, 31))); break;
    case 17: a.p_clip(rd, rs1, 1 + static_cast<u32>(rng.uniform(0, 15)));
             break;
    // Post-increment / reg-offset addressing: these carry their mode in the
    // packed decode flags on the fast path. A scratch base keeps s0 stable;
    // rd == base is legal and exercises the writeback-ordering edge.
    case 18:
      a.addi(7, xasm::reg::s0, rng.uniform(0, 64) * 4);
      a.p_lw_post(rd, 7, rng.uniform(-16, 16) * 4);
      break;
    case 19:
      a.addi(6, 0, rng.uniform(0, 127) * 4);
      a.p_lw_rr(rd, xasm::reg::s0, 6);
      break;
    case 20:
      a.addi(7, xasm::reg::s0, rng.uniform(0, 64) * 4);
      a.p_sw_post(rd, 7, rng.uniform(-16, 16) * 4);
      break;
    // Remaining dot-product shapes: 16-bit lanes and scalar-replicated
    // operands go through different decode-specialized kernels.
    case 21: a.pv_dotup(isa::SimdFmt::kH, rd, rs1, rs2); break;
    case 22: a.pv_sdotsp(isa::SimdFmt::kBSc, rd, rs1, rs2); break;
  }
}

/// A random but always-terminating program: straight-line blocks mixed
/// with forward branches, immediate-compare branches and nested hardware
/// loops (the structures whose dispatch differs most between the modes).
xasm::Program random_program(u64 seed) {
  Rng rng(seed);
  xasm::Assembler a(0);
  a.li(xasm::reg::s0, 0x8000);  // data pointer (mapped, far from code)
  a.li(xasm::reg::s1, 3);       // small loop count

  const int blocks = 12;
  for (int b = 0; b < blocks; ++b) {
    switch (rng.uniform(0, 3)) {
      case 0: {  // plain straight-line block
        for (int i = 0; i < 12; ++i) random_op(a, rng);
        break;
      }
      case 1: {  // forward conditional branch over a few ops
        const xasm::Assembler::Label skip = a.new_label();
        const u8 rs1 = static_cast<u8>(rng.uniform(5, 15));
        const u8 rs2 = static_cast<u8>(rng.uniform(5, 15));
        switch (rng.uniform(0, 3)) {
          case 0: a.beq(rs1, rs2, skip); break;
          case 1: a.bne(rs1, rs2, skip); break;
          case 2: a.blt(rs1, rs2, skip); break;
          case 3: a.p_beqimm(rs1, rng.uniform(-16, 15), skip); break;
        }
        for (int i = 0; i < 4; ++i) random_op(a, rng);
        a.bind(skip);
        break;
      }
      case 2: {  // hardware loop (immediate count)
        const xasm::Assembler::Label end = a.new_label();
        a.lp_setupi(0, static_cast<u32>(rng.uniform(2, 6)), end);
        for (int i = 0; i < 5; ++i) random_op(a, rng);
        a.bind(end);
        break;
      }
      case 3: {  // nested hardware loops (register count in L1)
        const xasm::Assembler::Label end1 = a.new_label();
        const xasm::Assembler::Label end0 = a.new_label();
        a.lp_setup(1, xasm::reg::s1, end1);
        a.lp_setupi(0, static_cast<u32>(rng.uniform(2, 4)), end0);
        for (int i = 0; i < 3; ++i) random_op(a, rng);
        a.bind(end0);
        random_op(a, rng);
        a.bind(end1);
        break;
      }
    }
  }
  a.ecall();
  return a.finish();
}

TEST(DispatchDiff, RandomProgramsBitIdentical) {
  for (u64 trial = 0; trial < 25; ++trial) {
    const xasm::Program prog = random_program(0xd15b07c4 + trial * 977);
    const auto ref = run_mode(prog, sim::CoreConfig::extended(), true);
    const auto fast = run_mode(prog, sim::CoreConfig::extended(), false);
    ASSERT_EQ(ref.reason, sim::HaltReason::kEcall) << "trial " << trial;
    expect_identical(ref, fast);
    if (::testing::Test::HasFailure()) FAIL() << "diverged at trial " << trial;
  }
}

TEST(DispatchDiff, Ri5cyConfigBitIdentical) {
  // The baseline core rejects XpulpNN ops; both modes must also agree on
  // *which* instruction faults (feature guard vs require() chains).
  for (u64 trial = 0; trial < 10; ++trial) {
    const xasm::Program prog = random_program(0xace0 + trial * 131);
    sim::CoreConfig cfg = sim::CoreConfig::ri5cy();
    FinalState ref, fast;
    bool ref_threw = false, fast_threw = false;
    addr_t ref_pc = 0, fast_pc = 0;
    try {
      ref = run_mode(prog, cfg, true);
    } catch (const IllegalInstruction& e) {
      ref_threw = true;
      ref_pc = e.pc();
    }
    try {
      fast = run_mode(prog, cfg, false);
    } catch (const IllegalInstruction& e) {
      fast_threw = true;
      fast_pc = e.pc();
    }
    ASSERT_EQ(ref_threw, fast_threw) << "trial " << trial;
    if (ref_threw) {
      EXPECT_EQ(ref_pc, fast_pc) << "trial " << trial;
    } else {
      expect_identical(ref, fast);
    }
  }
}

TEST(DispatchDiff, InstructionLimitSemanticsMatch) {
  // Hitting the instruction limit must report the same counters and halt
  // reason in both modes, including the corner where the limiting step
  // also executed an ecall.
  xasm::Assembler a(0);
  for (int i = 0; i < 50; ++i) a.addi(5, 5, 1);
  a.ecall();
  const xasm::Program prog = a.finish();
  for (u64 limit : {1ull, 7ull, 50ull, 51ull, 52ull}) {
    const auto ref = run_mode(prog, sim::CoreConfig::extended(), true, limit);
    const auto fast =
        run_mode(prog, sim::CoreConfig::extended(), false, limit);
    expect_identical(ref, fast);
  }
}

TEST(DispatchDiff, ConvKernelVariantsBitIdentical) {
  // The paper's conv layer (reduced spatially to keep the test fast) under
  // every kernel variant: registers aside, the cycle-level counters feed
  // every figure reproduction, so they must not move with dispatch mode.
  using kernels::ConvVariant;
  for (ConvVariant v :
       {ConvVariant::kXpulpV2_8b, ConvVariant::kXpulpV2_Sub,
        ConvVariant::kXpulpV2_SubShf, ConvVariant::kXpulpNN_SwQ,
        ConvVariant::kXpulpNN_HwQ}) {
    qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(
        v == ConvVariant::kXpulpV2_8b ? 8 : 4);
    spec.in_h = spec.in_w = 4;
    spec.out_c = 8;
    const auto data = kernels::ConvLayerData::random(spec, 0x5eed);

    sim::CoreConfig ref_cfg = sim::CoreConfig::extended();
    ref_cfg.reference_dispatch = true;
    sim::CoreConfig fast_cfg = sim::CoreConfig::extended();

    const auto ref = kernels::run_conv_layer(data, v, ref_cfg);
    const auto fast = kernels::run_conv_layer(data, v, fast_cfg);

    EXPECT_EQ(ref.perf.cycles, fast.perf.cycles) << kernels::variant_name(v);
    EXPECT_EQ(ref.perf.instructions, fast.perf.instructions);
    EXPECT_EQ(ref.perf.hwloop_backedges, fast.perf.hwloop_backedges);
    EXPECT_EQ(ref.perf.load_use_stall_cycles, fast.perf.load_use_stall_cycles);
    EXPECT_EQ(ref.perf.qnt_stall_cycles, fast.perf.qnt_stall_cycles);
    EXPECT_EQ(ref.perf.dotp_ops, fast.perf.dotp_ops);
    EXPECT_EQ(ref.perf.lsu_data_toggles, fast.perf.lsu_data_toggles);
    EXPECT_EQ(ref.quant_cycles, fast.quant_cycles);
    EXPECT_EQ(ref.output.data(), fast.output.data())
        << kernels::variant_name(v);
  }
}

TEST(DispatchDiff, SelfModifyingCodePicksUpPatch) {
  // A store over an already-executed (and therefore decode-cached)
  // instruction must invalidate the cached decode: the patched instruction
  // executes on the next pass. Regression test for decode-cache coherence.
  auto build = [](addr_t target_guess) {
    // `addi a0, a0, 100` — the word the program patches over the target.
    isa::Instr patch;
    patch.op = isa::Mnemonic::kAddi;
    patch.rd = 10;
    patch.rs1 = 10;
    patch.imm = 100;
    const u32 patch_word = isa::encode(patch);

    xasm::Assembler a(0);
    a.li(xasm::reg::a0, 0);
    a.li(xasm::reg::t2, 0);
    a.li(xasm::reg::t0, static_cast<i32>(target_guess));
    a.li(xasm::reg::t1, static_cast<i32>(patch_word));
    xasm::Assembler::Label target = a.here();
    a.addi(xasm::reg::a0, xasm::reg::a0, 1);  // patched to +100 at run time
    const xasm::Assembler::Label do_patch = a.new_label();
    a.beq(xasm::reg::t2, 0, do_patch);
    a.ecall();
    a.bind(do_patch);
    a.addi(xasm::reg::t2, 0, 1);
    a.sw(xasm::reg::t1, xasm::reg::t0, 0);  // overwrite the target instr
    a.j(target);
    return a.finish();
  };

  // Two-pass assembly: measure the target address with a placeholder
  // value, then rebuild with the real one (both values fit 12 bits, so the
  // li expansion — and therefore the code layout — is stable).
  const addr_t target_addr = [&] {
    isa::Instr patch;
    patch.op = isa::Mnemonic::kAddi;
    patch.rd = 10;
    patch.rs1 = 10;
    patch.imm = 100;
    // li of the patch word takes lui+addi; replicate to find the offset.
    xasm::Assembler a2(0);
    a2.li(xasm::reg::a0, 0);
    a2.li(xasm::reg::t2, 0);
    a2.li(xasm::reg::t0, 64);
    a2.li(xasm::reg::t1, static_cast<i32>(isa::encode(patch)));
    return static_cast<addr_t>(a2.finish().size_bytes());
  }();

  const xasm::Program prog = build(target_addr);
  for (bool reference : {false, true}) {
    const auto s = run_mode(prog, sim::CoreConfig::extended(), reference);
    ASSERT_EQ(s.reason, sim::HaltReason::kEcall);
    // First pass adds 1, patched second pass adds 100.
    EXPECT_EQ(s.regs[10], 101u)
        << (reference ? "reference" : "fast") << " dispatch executed stale "
        << "decode after self-modifying store";
  }
}

TEST(DispatchDiff, DecodeCacheGrowthCoversWidePrograms) {
  // A program whose code straddles far beyond the initial 4096-entry cache
  // (geometric growth path) and is entered without a pre-sized cache.
  xasm::Assembler a(0);
  const xasm::Assembler::Label far = a.new_label();
  a.li(xasm::reg::a0, 7);
  a.j(far);
  for (int i = 0; i < 8000; ++i) a.addi(5, 5, 1);  // 32 KB of filler
  a.bind(far);
  a.addi(xasm::reg::a0, xasm::reg::a0, 35);
  a.ecall();
  const xasm::Program prog = a.finish();

  mem::Memory mem;
  prog.load(mem);
  sim::Core core(mem);
  core.reset(prog.entry());  // no code_end: exercise growth, not pre-size
  ASSERT_EQ(core.run(1000), sim::HaltReason::kEcall);
  EXPECT_EQ(core.reg(10), 42u);
}

}  // namespace
}  // namespace xpulp
