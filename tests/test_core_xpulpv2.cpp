// XpulpV2 extension semantics: post-increment/indexed memory, hardware
// loops, scalar min/max/abs/clip, MAC, bit manipulation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim_test_util.hpp"

namespace xpulp {
namespace {

namespace r = xasm::reg;
using test::run_program;

TEST(XpulpV2, PostIncrementLoadStreams) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::s0, 0x1000);
    a.li(r::t0, 0x04030201);
    a.sw(r::t0, r::s0, 0);
    a.li(r::t0, 0x08070605);
    a.sw(r::t0, r::s0, 4);
    a.p_lbu_post(r::a0, r::s0, 1);  // 1
    a.p_lbu_post(r::a1, r::s0, 1);  // 2
    a.p_lhu_post(r::a2, r::s0, 2);  // 0x0403
    a.p_lw_post(r::a3, r::s0, 4);   // 0x08070605
    a.mv(r::a4, r::s0);             // base advanced to 0x1008
  });
  EXPECT_EQ(res.regs[r::a0], 1u);
  EXPECT_EQ(res.regs[r::a1], 2u);
  EXPECT_EQ(res.regs[r::a2], 0x0403u);
  EXPECT_EQ(res.regs[r::a3], 0x08070605u);
  EXPECT_EQ(res.regs[r::a4], 0x1008u);
}

TEST(XpulpV2, PostIncrementLoadSignExtends) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::s0, 0x1000);
    a.li(r::t0, 0xff80);
    a.sw(r::t0, r::s0, 0);
    a.p_lb_post(r::a0, r::s0, 1);  // 0x80 -> -128
    a.li(r::s0, 0x1000);
    a.p_lh_post(r::a1, r::s0, 2);  // 0xff80 -> -128
  });
  EXPECT_EQ(static_cast<i32>(res.regs[r::a0]), -128);
  EXPECT_EQ(static_cast<i32>(res.regs[r::a1]), -128);
}

TEST(XpulpV2, PostIncrementStoreAndNegativeStride) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::s0, 0x1008);
    a.li(r::t0, 0xaa);
    a.p_sb_post(r::t0, r::s0, -1);  // walk downwards
    a.p_sb_post(r::t0, r::s0, -1);
    a.p_sb_post(r::t0, r::s0, -1);
    a.mv(r::a0, r::s0);
    a.li(r::s1, 0x1006);
    a.lw(r::a1, r::s1, 0);
  });
  EXPECT_EQ(res.regs[r::a0], 0x1005u);
  EXPECT_EQ(res.regs[r::a1] & 0x00ffffffu, 0x00aaaaaau);
}

TEST(XpulpV2, RegisterPostIncrementAndIndexed) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::s0, 0x1000);
    a.li(r::t0, 0x12345678);
    a.sw(r::t0, r::s0, 0);
    a.li(r::t1, 0x9abcdef0);
    a.sw(r::t1, r::s0, 8);
    a.li(r::t2, 8);
    a.p_lw_rr(r::a0, r::s0, r::t2);      // indexed: mem[0x1008]
    a.p_lw_post_r(r::a1, r::s0, r::t2);  // mem[0x1000], base += 8
    a.p_lw_rr(r::a2, r::s0, r::zero);    // mem[0x1008]
    a.li(r::t3, 0x55);
    a.li(r::t4, 4);
    a.p_sw_post_r(r::t3, r::s0, r::t4);  // mem[0x1008] = 0x55, base += 4
    a.li(r::t6, 0x1008);
    a.lw(r::a3, r::t6, 0);
    a.mv(r::a4, r::s0);
    a.li(r::t5, 0x66);
    a.p_sw_rr(r::t5, r::zero, r::a4);    // mem[0x100c] = 0x66
    a.lw(r::a5, r::t6, 4);
  });
  EXPECT_EQ(res.regs[r::a0], 0x9abcdef0u);
  EXPECT_EQ(res.regs[r::a1], 0x12345678u);
  EXPECT_EQ(res.regs[r::a2], 0x9abcdef0u);
  EXPECT_EQ(res.regs[r::a3], 0x55u);
  EXPECT_EQ(res.regs[r::a4], 0x100cu);
  EXPECT_EQ(res.regs[r::a5], 0x66u);
}

TEST(XpulpV2, ScalarMinMaxAbsExt) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, -5);
    a.li(r::a1, 3);
    a.p_min(r::t0, r::a0, r::a1);
    a.p_max(r::t1, r::a0, r::a1);
    a.p_minu(r::t2, r::a0, r::a1);  // unsigned: 3
    a.p_maxu(r::t3, r::a0, r::a1);  // 0xfffffffb
    a.p_abs(r::t4, r::a0);
    a.li(r::a2, 0x8fff);
    a.p_exths(r::t5, r::a2);
    a.p_exthz(r::t6, r::a2);
    a.li(r::a3, 0x80);
    a.p_extbs(r::s0, r::a3);
    a.p_extbz(r::s1, r::a3);
  });
  EXPECT_EQ(static_cast<i32>(res.regs[r::t0]), -5);
  EXPECT_EQ(res.regs[r::t1], 3u);
  EXPECT_EQ(res.regs[r::t2], 3u);
  EXPECT_EQ(res.regs[r::t3], 0xfffffffbu);
  EXPECT_EQ(res.regs[r::t4], 5u);
  EXPECT_EQ(static_cast<i32>(res.regs[r::t5]), static_cast<i32>(0xffff8fff));
  EXPECT_EQ(res.regs[r::t6], 0x8fffu);
  EXPECT_EQ(static_cast<i32>(res.regs[r::s0]), -128);
  EXPECT_EQ(res.regs[r::s1], 0x80u);
}

TEST(XpulpV2, CountBitOps) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 0x000f0f00);
    a.p_cnt(r::t0, r::a0);
    a.p_ff1(r::t1, r::a0);
    a.p_fl1(r::t2, r::a0);
    a.p_clb(r::t3, r::a0);
    a.li(r::a1, 8);
    a.p_ror(r::t4, r::a0, r::a1);
  });
  EXPECT_EQ(res.regs[r::t0], 8u);
  EXPECT_EQ(res.regs[r::t1], 8u);
  EXPECT_EQ(res.regs[r::t2], 19u);
  EXPECT_EQ(res.regs[r::t3], 11u);  // 12 leading zeros - 1
  EXPECT_EQ(res.regs[r::t4], 0x00000f0fu);
}

TEST(XpulpV2, ClipSaturates) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 300);
    a.p_clip(r::t0, r::a0, 8);    // [-128, 127]
    a.li(r::a1, -300);
    a.p_clip(r::t1, r::a1, 8);
    a.p_clipu(r::t2, r::a0, 8);   // [0, 255]
    a.p_clipu(r::t3, r::a1, 8);
    a.li(r::a2, 100);
    a.p_clip(r::t4, r::a2, 8);    // in range
  });
  EXPECT_EQ(static_cast<i32>(res.regs[r::t0]), 127);
  EXPECT_EQ(static_cast<i32>(res.regs[r::t1]), -128);
  EXPECT_EQ(res.regs[r::t2], 255u);
  EXPECT_EQ(res.regs[r::t3], 0u);
  EXPECT_EQ(res.regs[r::t4], 100u);
}

TEST(XpulpV2, MacMsuAccumulate) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 3);
    a.li(r::a1, 4);
    a.li(r::t0, 100);
    a.p_mac(r::t0, r::a0, r::a1);  // 112
    a.p_mac(r::t0, r::a0, r::a1);  // 124
    a.li(r::t1, 100);
    a.p_msu(r::t1, r::a0, r::a1);  // 88
  });
  EXPECT_EQ(res.regs[r::t0], 124u);
  EXPECT_EQ(res.regs[r::t1], 88u);
}

TEST(XpulpV2, BitManipulation) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 0x00f0a500);
    a.p_extract(r::t0, r::a0, 8, 16);   // 0xf0 sign-extended -> -16
    a.p_extractu(r::t1, r::a0, 8, 16);  // 0xf0
    a.li(r::t2, 0);
    a.li(r::a1, 0xa5);
    a.mv(r::t2, r::zero);
    a.p_insert(r::t2, r::a1, 8, 8);     // t2[15:8] = 0xa5
    a.p_bset(r::t3, r::zero, 4, 4);     // 0xf0
    a.li(r::a2, -1);
    a.p_bclr(r::t4, r::a2, 16, 8);      // clear bits 23:8
  });
  EXPECT_EQ(static_cast<i32>(res.regs[r::t0]), -16);
  EXPECT_EQ(res.regs[r::t1], 0xf0u);
  EXPECT_EQ(res.regs[r::t2], 0xa500u);
  EXPECT_EQ(res.regs[r::t3], 0xf0u);
  EXPECT_EQ(res.regs[r::t4], 0xff0000ffu);
}

TEST(XpulpV2, HardwareLoopSetupi) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    auto end = a.new_label();
    a.lp_setupi(0, 10, end);
    a.addi(r::a0, r::a0, 1);
    a.addi(r::a1, r::a1, 2);
    a.bind(end);
  });
  EXPECT_EQ(res.regs[r::a0], 10u);
  EXPECT_EQ(res.regs[r::a1], 20u);
  EXPECT_EQ(res.perf.hwloop_backedges, 9u);
  EXPECT_EQ(res.perf.taken_branches, 0u);  // zero-overhead looping
}

TEST(XpulpV2, HardwareLoopSetupWithRegisterCount) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::t0, 100);
    a.li(r::a0, 0);
    auto end = a.new_label();
    a.lp_setup(0, r::t0, end);
    a.addi(r::a0, r::a0, 3);
    a.nop();
    a.bind(end);
    a.addi(r::a1, r::a0, 1);  // falls through after the final iteration
  });
  EXPECT_EQ(res.regs[r::a0], 300u);
  EXPECT_EQ(res.regs[r::a1], 301u);
  EXPECT_EQ(res.perf.hwloop_backedges, 99u);
}

TEST(XpulpV2, NestedHardwareLoops) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    a.li(r::t0, 5);
    auto end1 = a.new_label();
    a.lp_setup(1, r::t0, end1);       // outer loop (L1)
    auto end0 = a.new_label();
    a.lp_setupi(0, 7, end0);          // inner loop (L0)
    a.addi(r::a0, r::a0, 1);
    a.nop();
    a.bind(end0);
    a.addi(r::a1, r::a1, 1);          // outer body tail
    a.bind(end1);
  });
  EXPECT_EQ(res.regs[r::a0], 35u);
  EXPECT_EQ(res.regs[r::a1], 5u);
}

TEST(XpulpV2, ExplicitLoopRegisterSetup) {
  // lp.starti / lp.endi / lp.counti assemble the same loop piecewise.
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    auto start = a.new_label();
    auto end = a.new_label();
    a.lp_starti(0, start);
    a.lp_endi(0, end);
    a.lp_counti(0, 6);
    a.bind(start);
    a.addi(r::a0, r::a0, 5);
    a.nop();
    a.bind(end);
  });
  EXPECT_EQ(res.regs[r::a0], 30u);
}

TEST(XpulpV2, LpCountFromRegister) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    a.li(r::t1, 4);
    auto start = a.new_label();
    auto end = a.new_label();
    a.lp_starti(0, start);
    a.lp_endi(0, end);
    a.lp_count(0, r::t1);
    a.bind(start);
    a.addi(r::a0, r::a0, 1);
    a.nop();
    a.bind(end);
  });
  EXPECT_EQ(res.regs[r::a0], 4u);
}

TEST(XpulpV2, BaselineCoreRejectsNothingFromV2) {
  // XpulpV2 ops must work on the *baseline* RI5CY configuration too.
  auto res = run_program(
      [](xasm::Assembler& a) {
        a.li(r::a0, -9);
        a.p_abs(r::a1, r::a0);
        auto end = a.new_label();
        a.lp_setupi(0, 3, end);
        a.addi(r::a2, r::a2, 1);
        a.nop();
        a.bind(end);
      },
      sim::CoreConfig::ri5cy());
  EXPECT_EQ(res.regs[r::a1], 9u);
  EXPECT_EQ(res.regs[r::a2], 3u);
}

}  // namespace
}  // namespace xpulp
