// Superblock engine unit tests: coverage statistics, runtime toggling,
// instruction-limit boundary exactness across fused bursts, and a
// differential sweep over every dot-product mnemonic/format combination —
// the combinations the fused loop routes through host-SIMD kernels
// (8-bit, nibble) and the ones that stay on the scalar lane kernel
// (16-bit, crumb) must all be bit-identical to the reference interpreter.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "diff_test_util.hpp"
#include "isa/instruction.hpp"
#include "mem/memory.hpp"
#include "sim/core.hpp"
#include "xasm/assembler.hpp"

namespace xpulp {
namespace {

namespace r = xasm::reg;
using test::expect_identical;
using test::final_state_of;
using test::FinalState;

constexpr addr_t kData = 0x8000;

/// Run `prog` with deterministic pseudo-random operand bytes mapped at
/// kData (zero-filled memory would make every dot product and toggle
/// count trivially zero).
FinalState run_prog(const xasm::Program& prog, bool reference,
                    bool superblock,
                    sim::SuperblockStats* stats_out = nullptr,
                    u64 max_instr = 2'000'000) {
  sim::CoreConfig cfg = sim::CoreConfig::extended();
  cfg.reference_dispatch = reference;
  cfg.superblock = superblock;
  mem::Memory mem;
  prog.load(mem);
  std::vector<u8> data(1024);
  Rng rng(0x0ddba11);
  for (auto& b : data) b = static_cast<u8>(rng.uniform(0, 255));
  mem.write_block(kData, data);
  sim::Core core(mem, cfg);
  core.reset(prog.entry(), prog.base() + prog.size_bytes());
  core.run(max_instr);
  if (stats_out) *stats_out = core.superblock_stats();
  return final_state_of(core, mem);
}

/// A hot hardware loop mixing a post-increment load with ALU ops: small
/// enough to compile, hot enough (31 iterations) to dominate the run.
xasm::Program hot_hwloop_program() {
  xasm::Assembler a(0);
  a.li(r::s0, kData);
  a.li(r::a0, 0);
  const xasm::Assembler::Label end = a.new_label();
  a.lp_setupi(0, 31, end);
  a.p_lw_post(r::t0, r::s0, 4);
  a.addi(r::a0, r::a0, 3);
  a.add(r::a1, r::a0, r::t0);
  a.bind(end);
  a.ecall();
  return a.finish();
}

TEST(Superblock, StatsCountFusedExecution) {
  const xasm::Program prog = hot_hwloop_program();
  sim::SuperblockStats stats;
  const FinalState sb = run_prog(prog, false, true, &stats);
  ASSERT_EQ(sb.reason, sim::HaltReason::kEcall);

  EXPECT_GT(stats.blocks_compiled, 0u);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.fused_iterations, 0u);
  EXPECT_GT(stats.fused_instructions, 0u);
  EXPECT_LE(stats.fused_instructions, sb.perf.instructions);
  EXPECT_EQ(stats.smc_bails, 0u);
  EXPECT_EQ(stats.trap_bails, 0u);

  // And the fused run is bit-identical to both interpreter modes.
  expect_identical(run_prog(prog, true, false), sb);
  expect_identical(run_prog(prog, false, false), sb);
}

TEST(Superblock, RuntimeToggleKeepsEngineCold) {
  // set_superblock(false) before the run: no burst may be entered, and
  // the result must match the plain fast path exactly.
  const xasm::Program prog = hot_hwloop_program();
  sim::CoreConfig cfg = sim::CoreConfig::extended();
  cfg.superblock = true;
  mem::Memory mem;
  prog.load(mem);
  std::vector<u8> data(1024);
  Rng rng(0x0ddba11);
  for (auto& b : data) b = static_cast<u8>(rng.uniform(0, 255));
  mem.write_block(kData, data);
  sim::Core core(mem, cfg);
  core.reset(prog.entry(), prog.base() + prog.size_bytes());
  core.set_superblock(false);
  core.run(2'000'000);
  EXPECT_EQ(core.superblock_stats().entries, 0u);
  EXPECT_EQ(core.superblock_stats().fused_instructions, 0u);
  expect_identical(run_prog(prog, false, false), final_state_of(core, mem));
}

TEST(Superblock, InstructionLimitSweepIsBoundaryExact) {
  // Every instruction-limit value must stop the fused engine on exactly
  // the same boundary (state, counters, halt reason) as the reference
  // interpreter — including limits that land mid-burst, where the engine
  // must either cap the burst budget or reject entry.
  const xasm::Program prog = hot_hwloop_program();
  const FinalState full = run_prog(prog, true, false);
  ASSERT_EQ(full.reason, sim::HaltReason::kEcall);
  const u64 total = full.perf.instructions;

  for (u64 limit = 1; limit <= total + 1; ++limit) {
    const FinalState ref = run_prog(prog, true, false, nullptr, limit);
    const FinalState sb = run_prog(prog, false, true, nullptr, limit);
    expect_identical(ref, sb);
    if (limit <= total) {
      EXPECT_EQ(sb.perf.instructions, std::min(limit, total));
    }
    if (::testing::Test::HasFailure()) FAIL() << "limit " << limit;
  }
}

TEST(Superblock, DotVariantSweepBitIdentical) {
  // Hot hwloop around [2 post-inc loads + 1 dot]: every mnemonic x format
  // combination, diffed fused-vs-reference. This walks every fused dot
  // path: the host-SIMD byte and nibble kernels, the scalar-replicated
  // expansions, and the generic lane kernel (16-bit, crumb).
  using isa::SimdFmt;
  struct OpCase {
    const char* name;
    void (xasm::Assembler::*emit)(SimdFmt, u8, u8, u8);
  };
  const OpCase ops[] = {
      {"dotup", &xasm::Assembler::pv_dotup},
      {"dotusp", &xasm::Assembler::pv_dotusp},
      {"dotsp", &xasm::Assembler::pv_dotsp},
      {"sdotup", &xasm::Assembler::pv_sdotup},
      {"sdotusp", &xasm::Assembler::pv_sdotusp},
      {"sdotsp", &xasm::Assembler::pv_sdotsp},
  };
  const SimdFmt fmts[] = {SimdFmt::kB, SimdFmt::kBSc, SimdFmt::kH,
                          SimdFmt::kHSc, SimdFmt::kN, SimdFmt::kNSc,
                          SimdFmt::kC, SimdFmt::kCSc};

  for (const OpCase& op : ops) {
    for (const SimdFmt fmt : fmts) {
      xasm::Assembler a(0);
      a.li(r::s0, kData);
      a.li(r::a0, 0x1234);  // live accumulator for the sdot variants
      const xasm::Assembler::Label end = a.new_label();
      a.lp_setupi(0, 24, end);
      a.p_lw_post(r::t0, r::s0, 4);
      a.p_lw_post(r::t1, r::s0, 4);
      (a.*(op.emit))(fmt, r::a0, r::t0, r::t1);
      a.bind(end);
      a.ecall();
      const xasm::Program prog = a.finish();

      sim::SuperblockStats stats;
      const FinalState ref = run_prog(prog, true, false);
      const FinalState sb = run_prog(prog, false, true, &stats);
      ASSERT_EQ(ref.reason, sim::HaltReason::kEcall) << op.name;
      EXPECT_GT(stats.fused_iterations, 0u) << op.name;
      expect_identical(ref, sb);
      if (::testing::Test::HasFailure()) {
        FAIL() << op.name << " fmt " << static_cast<int>(fmt);
      }
    }
  }
}

TEST(Superblock, ConvInnerShapeBitIdentical) {
  // The exact 2x2-blocked MatMul inner body the conv generator emits
  // (4 post-inc word loads + 4 accumulate-dots in the 2x2 operand
  // pattern): the shape the engine specializes into a single macro-op
  // handler. Byte and nibble element widths, both rs2 signednesses —
  // including the signed-activation nibble case that must fall back to
  // the generic fused path.
  using isa::SimdFmt;
  struct ShapeCase {
    const char* name;
    SimdFmt fmt;
    bool signed_a;  // rs1 (activation) operand signedness
  };
  const ShapeCase cases[] = {
      {"sdotusp.b", SimdFmt::kB, false},
      {"sdotsp.b", SimdFmt::kB, true},
      {"sdotusp.n", SimdFmt::kN, false},
      {"sdotsp.n", SimdFmt::kN, true},
  };

  for (const ShapeCase& c : cases) {
    xasm::Assembler a(0);
    a.li(r::s0, kData);
    a.li(r::s1, kData + 0x100);
    for (u8 acc : {r::a4, r::a5, r::a6, r::a7}) a.li(acc, 0);
    const xasm::Assembler::Label end = a.new_label();
    a.lp_setupi(0, 24, end);
    a.p_lw_post(r::t0, r::s0, 4);  // activation pixel 0
    a.p_lw_post(r::t1, r::s0, 4);  // activation pixel 1
    a.p_lw_post(r::t2, r::s1, 4);  // weight channel 0
    a.p_lw_post(r::t3, r::s1, 4);  // weight channel 1
    auto dot = [&](u8 rd, u8 w, u8 x) {
      if (c.signed_a) {
        a.pv_sdotsp(c.fmt, rd, w, x);
      } else {
        a.pv_sdotusp(c.fmt, rd, w, x);
      }
    };
    dot(r::a4, r::t2, r::t0);
    dot(r::a5, r::t3, r::t0);
    dot(r::a6, r::t2, r::t1);
    dot(r::a7, r::t3, r::t1);
    a.bind(end);
    a.ecall();
    const xasm::Program prog = a.finish();

    sim::SuperblockStats stats;
    const FinalState ref = run_prog(prog, true, false);
    const FinalState sb = run_prog(prog, false, true, &stats);
    ASSERT_EQ(ref.reason, sim::HaltReason::kEcall) << c.name;
    EXPECT_GT(stats.fused_iterations, 0u) << c.name;
    expect_identical(ref, sb);
    if (::testing::Test::HasFailure()) FAIL() << c.name;
  }
}

TEST(Superblock, MixedDotSweepBitIdentical) {
  // Every mixed mnemonic under every legal mpc selector, in the hot-loop
  // shape the engine fuses. The fused body bakes the selector at compile
  // time (SbOp::imm), so this exercises the baked path for all 18
  // combinations against the reference interpreter.
  struct OpCase {
    const char* name;
    void (xasm::Assembler::*emit)(u8, u8, u8);
  };
  const OpCase ops[] = {
      {"mldotup", &xasm::Assembler::pv_mldotup},
      {"mldotusp", &xasm::Assembler::pv_mldotusp},
      {"mldotsp", &xasm::Assembler::pv_mldotsp},
      {"mlsdotup", &xasm::Assembler::pv_mlsdotup},
      {"mlsdotusp", &xasm::Assembler::pv_mlsdotusp},
      {"mlsdotsp", &xasm::Assembler::pv_mlsdotsp},
  };
  for (const OpCase& op : ops) {
    for (u32 sel = 0; sel < 3; ++sel) {
      xasm::Assembler a(0);
      a.csrrwi(r::zero, isa::kMpcCsr, sel);
      a.li(r::s0, kData);
      a.li(r::a0, 0x1234);
      const xasm::Assembler::Label end = a.new_label();
      a.lp_setupi(0, 24, end);
      a.p_lw_post(r::t0, r::s0, 4);
      a.p_lw_post(r::t1, r::s0, 4);
      (a.*(op.emit))(r::a0, r::t0, r::t1);
      a.bind(end);
      a.ecall();
      const xasm::Program prog = a.finish();

      sim::SuperblockStats stats;
      const FinalState ref = run_prog(prog, true, false);
      const FinalState fast = run_prog(prog, false, false);
      const FinalState sb = run_prog(prog, false, true, &stats);
      ASSERT_EQ(ref.reason, sim::HaltReason::kEcall) << op.name;
      EXPECT_GT(stats.fused_iterations, 0u) << op.name << " sel " << sel;
      expect_identical(ref, fast);
      expect_identical(ref, sb);
      if (::testing::Test::HasFailure()) {
        FAIL() << op.name << " sel " << sel;
      }
    }
  }
}

/// The mpc-flip regression program: an outer loop re-enters the same hot
/// mixed hwloop with a different selector each pass, so a plan compiled
/// with one baked selector would misfuse on the next pass unless the CSR
/// write evicts it.
xasm::Program mpc_flip_program() {
  xasm::Assembler a(0);
  a.csrrwi(r::zero, isa::kMpcCsr, 0);
  a.li(r::s5, 3);  // one pass per selector
  a.li(r::s6, 0);  // next selector value
  a.li(r::a0, 0x55);
  const xasm::Assembler::Label outer = a.here();
  a.li(r::s0, kData);
  const xasm::Assembler::Label end = a.new_label();
  a.lp_setupi(0, 24, end);
  a.p_lw_post(r::t0, r::s0, 4);
  a.p_lw_post(r::t1, r::s0, 4);
  a.pv_mlsdotusp(r::a0, r::t0, r::t1);
  a.bind(end);
  a.addi(r::s6, r::s6, 1);               // 1, 2, 3 (3 never reaches a dot:
  a.csrrw(r::zero, isa::kMpcCsr, r::s6);  // the loop exits first)
  a.addi(r::s5, r::s5, -1);
  a.bne(r::s5, r::zero, outer);
  a.ecall();
  return a.finish();
}

TEST(Superblock, MpcFlipMidHotLoopEvictsAndStaysExact) {
  const xasm::Program prog = mpc_flip_program();
  sim::SuperblockStats stats;
  const FinalState ref = run_prog(prog, true, false);
  const FinalState fast = run_prog(prog, false, false);
  const FinalState sb = run_prog(prog, false, true, &stats);
  ASSERT_EQ(ref.reason, sim::HaltReason::kEcall);

  // The selector flip between passes must evict the baked plan (never
  // silently reuse it) and the engine recompiles for the next selector.
  EXPECT_GE(stats.mpc_evictions, 2u);
  EXPECT_GE(stats.blocks_compiled, 2u);
  EXPECT_GT(stats.fused_iterations, 0u);

  // All three dispatch modes agree bit-for-bit on the final state.
  expect_identical(ref, fast);
  expect_identical(ref, sb);
}

TEST(Superblock, CsrWriteInsideHotLoopNeverFuses) {
  // A loop body containing the mpc write itself is ineligible for fusion
  // (ExecClass::kCsr never fuses) — the engine must fall back to the
  // interpreter, not bake a selector that changes mid-burst.
  xasm::Assembler a(0);
  a.li(r::s0, kData);
  a.li(r::a0, 0);
  a.li(r::s6, 0);
  const xasm::Assembler::Label end = a.new_label();
  a.lp_setupi(0, 24, end);
  a.andi(r::s6, r::s6, 1);                // alternate selectors 0/1
  a.csrrw(r::zero, isa::kMpcCsr, r::s6);
  a.p_lw_post(r::t0, r::s0, 4);
  a.pv_mlsdotusp(r::a0, r::t0, r::t0);
  a.addi(r::s6, r::s6, 1);
  a.bind(end);
  a.ecall();
  const xasm::Program prog = a.finish();

  sim::SuperblockStats stats;
  const FinalState ref = run_prog(prog, true, false);
  const FinalState sb = run_prog(prog, false, true, &stats);
  ASSERT_EQ(ref.reason, sim::HaltReason::kEcall);
  EXPECT_EQ(stats.fused_iterations, 0u);
  expect_identical(ref, sb);
}

}  // namespace
}  // namespace xpulp
