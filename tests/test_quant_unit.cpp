// Quantization unit (pv.qnt): functional agreement with the staircase
// reference, the 9-/5-cycle latency contract, the fixed second-tree offset,
// and memory-stall behaviour on misaligned trees.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "qnn/thresholds.hpp"
#include "sim_test_util.hpp"
#include "sim/quant_unit.hpp"

namespace xpulp {
namespace {

namespace r = xasm::reg;
using test::run_program;

void write_tree(mem::Memory& mem, addr_t base, const qnn::Thresholds& t) {
  const auto& e = t.eytzinger();
  for (size_t i = 0; i < e.size(); ++i) {
    mem.store_u16(base + static_cast<u32>(i) * 2, static_cast<u16>(e[i]));
  }
}

class QuantProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(QuantProperty, HardwareWalkEqualsLinearStaircase) {
  const unsigned q = GetParam();
  Rng rng(99 + q);
  mem::Memory mem(4096);
  sim::QuantUnit unit;
  for (int trial = 0; trial < 200; ++trial) {
    const auto th = qnn::Thresholds::random(rng, q, -3000, 3000);
    write_tree(mem, 256, th);
    const i16 x = static_cast<i16>(rng.uniform(-32768, 32767));
    EXPECT_EQ(sim::QuantUnit::quantize_one(mem, 256, x, q), th.quantize(x))
        << "q=" << q << " x=" << x;
  }
}

TEST_P(QuantProperty, ExactlyOnThresholdCountsAsAbove) {
  const unsigned q = GetParam();
  Rng rng(7);
  mem::Memory mem(4096);
  const auto th = qnn::Thresholds::random(rng, q, -100, 100);
  write_tree(mem, 0, th);
  for (const i16 t : th.sorted()) {
    // x == threshold: the staircase counts it (x >= t).
    EXPECT_EQ(sim::QuantUnit::quantize_one(mem, 0, t, q), th.quantize(t));
    EXPECT_EQ(th.quantize(t), th.quantize(t - 1) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(NibbleAndCrumb, QuantProperty,
                         ::testing::Values(4u, 2u));

TEST(QuantUnit, DuplicateThresholdsStillRankCorrectly) {
  // Saturated/duplicated thresholds appear when trained thresholds clamp;
  // the BST walk must still return the rank.
  mem::Memory mem(256);
  const qnn::Thresholds th(2, {5, 5, 5});
  write_tree(mem, 0, th);
  EXPECT_EQ(sim::QuantUnit::quantize_one(mem, 0, 4, 2), 0u);
  EXPECT_EQ(sim::QuantUnit::quantize_one(mem, 0, 5, 2), 3u);
  EXPECT_EQ(sim::QuantUnit::quantize_one(mem, 0, 6, 2), 3u);
}

TEST(QuantUnit, LatencyContract) {
  mem::Memory mem(4096);
  Rng rng(3);
  write_tree(mem, 0, qnn::Thresholds::random(rng, 4, -50, 50));
  write_tree(mem, 32, qnn::Thresholds::random(rng, 4, -50, 50));
  sim::QuantUnit unit;
  const auto res4 = unit.execute(mem, 0x00100010u, 0, 4);
  EXPECT_EQ(res4.cycles, 9u);  // paper: 9 cycles for two 4-bit activations
  EXPECT_EQ(res4.mem_loads, 8u);

  write_tree(mem, 64, qnn::Thresholds::random(rng, 2, -50, 50));
  write_tree(mem, 72, qnn::Thresholds::random(rng, 2, -50, 50));
  const auto res2 = unit.execute(mem, 0x00100010u, 64, 2);
  EXPECT_EQ(res2.cycles, 5u);  // 5 cycles for two 2-bit activations
  EXPECT_EQ(res2.mem_loads, 4u);
}

TEST(QuantUnit, MisalignedTreeAddsMemoryStalls) {
  mem::Memory mem(4096);
  Rng rng(5);
  write_tree(mem, 1, qnn::Thresholds::random(rng, 2, -50, 50));
  write_tree(mem, 9, qnn::Thresholds::random(rng, 2, -50, 50));
  sim::QuantUnit unit;
  const auto res = unit.execute(mem, 0, 1, 2);
  // The architectural latency stays at the paper's fixed 1+2Q figure;
  // misaligned threshold fetches surface as memory stalls, not as a longer
  // unit occupancy (they are charged to mem_stall_cycles by the core).
  EXPECT_EQ(res.cycles, 5u);
  EXPECT_GT(res.mem_stalls, 0u);  // every halfword fetch splits
  EXPECT_EQ(res.mem_stalls, res.mem_loads);
}

TEST(QuantUnit, SecondActivationUsesFixedOffsetTree) {
  mem::Memory mem(4096);
  // Tree 0: thresholds {10, 20, 30}; tree 1 at +8 bytes: {-5, 0, 5}.
  const qnn::Thresholds t0(2, {10, 20, 30});
  const qnn::Thresholds t1(2, {-5, 0, 5});
  write_tree(mem, 128, t0);
  write_tree(mem, 128 + sim::QuantUnit::tree_stride_bytes(2), t1);
  sim::QuantUnit unit;
  // act0 = 25 -> rank 2 in t0; act1 = 1 -> rank 2 in t1.
  const u32 rs1 = (static_cast<u32>(static_cast<u16>(1)) << 16) | 25u;
  const auto res = unit.execute(mem, rs1, 128, 2);
  EXPECT_EQ(res.rd & 0x3u, 2u);
  EXPECT_EQ((res.rd >> 16) & 0x3u, 2u);
}

TEST(QuantUnit, NegativeActivationsQuantize) {
  mem::Memory mem(4096);
  const qnn::Thresholds t(4, {-70, -60, -50, -40, -30, -20, -10, 0, 10, 20,
                              30, 40, 50, 60, 70});
  write_tree(mem, 0, t);
  EXPECT_EQ(sim::QuantUnit::quantize_one(mem, 0, -100, 4), 0u);
  EXPECT_EQ(sim::QuantUnit::quantize_one(mem, 0, -55, 4), 2u);
  EXPECT_EQ(sim::QuantUnit::quantize_one(mem, 0, 0, 4), 8u);
  EXPECT_EQ(sim::QuantUnit::quantize_one(mem, 0, 100, 4), 15u);
}

TEST(QuantUnit, PvQntInstructionEndToEnd) {
  // Full pipeline: core executes pv.qnt.n against trees in guest memory.
  Rng rng(11);
  const auto th0 = qnn::Thresholds::random(rng, 4, -500, 500);
  const auto th1 = qnn::Thresholds::random(rng, 4, -500, 500);
  const i16 act0 = -123, act1 = 456;
  auto res = run_program(
      [&](xasm::Assembler& a) {
        a.li(r::a0, static_cast<i32>((static_cast<u32>(static_cast<u16>(act1))
                                      << 16) |
                                     static_cast<u16>(act0)));
        a.li(r::a1, 0x2000);
        a.pv_qnt(4, r::a2, r::a0, r::a1);
      },
      sim::CoreConfig::extended(),
      [&](mem::Memory& mem, sim::Core&) {
        write_tree(mem, 0x2000, th0);
        write_tree(mem, 0x2000 + 32, th1);
      });
  EXPECT_EQ(res.regs[r::a2] & 0xfu, th0.quantize(act0));
  EXPECT_EQ((res.regs[r::a2] >> 16) & 0xfu, th1.quantize(act1));
  EXPECT_EQ(res.perf.qnt_ops, 1u);
  EXPECT_EQ(res.perf.qnt_stall_cycles, 8u);  // 9-cycle instruction
}

TEST(QuantUnit, PvQntIllegalOnBaselineCore) {
  EXPECT_THROW(run_program(
                   [](xasm::Assembler& a) {
                     a.pv_qnt(4, r::a2, r::a0, r::a1);
                   },
                   sim::CoreConfig::ri5cy()),
               IllegalInstruction);
}

TEST(QuantUnit, TreeStride) {
  EXPECT_EQ(sim::QuantUnit::tree_stride_bytes(4), 32u);
  EXPECT_EQ(sim::QuantUnit::tree_stride_bytes(2), 8u);
}

// Shared program for the stall-attribution regressions: pv.qnt.n against
// *misaligned* trees (base 0x2001), so every halfword threshold fetch
// splits and costs one memory stall.
test::RunResult run_misaligned_qnt(sim::CoreConfig cfg,
                                   bool traced = false) {
  Rng rng(21);
  const auto th0 = qnn::Thresholds::random(rng, 4, -500, 500);
  const auto th1 = qnn::Thresholds::random(rng, 4, -500, 500);
  return run_program(
      [&](xasm::Assembler& a) {
        a.li(r::a0, (456 << 16) | 123);
        a.li(r::a1, 0x2001);
        a.pv_qnt(4, r::a2, r::a0, r::a1);
      },
      std::move(cfg),
      [&](mem::Memory& mem, sim::Core& core) {
        write_tree(mem, 0x2001, th0);
        write_tree(mem, 0x2001 + 32, th1);
        if (traced) {
          core.set_trace([](addr_t, const isa::Instr&) { return true; });
        }
      });
}

TEST(QuantUnit, MisalignedTreeStallAttribution) {
  // Regression: threshold-fetch memory stalls used to be folded into
  // qnt_stall_cycles, inflating the unit's latency past the paper's fixed
  // 9-cycle figure. The unit occupancy must stay 1+2Q regardless of tree
  // alignment; the split-fetch penalty belongs to mem_stall_cycles.
  const auto res = run_misaligned_qnt(sim::CoreConfig::extended());
  EXPECT_EQ(res.perf.qnt_ops, 1u);
  EXPECT_EQ(res.perf.qnt_stall_cycles, 8u);  // 9-cycle instruction, exactly
  // Q=4 levels, 2 halfword fetches per level, every one misaligned.
  EXPECT_EQ(res.perf.mem_stall_cycles, 8u);
  EXPECT_EQ(res.mem.stats().misaligned_accesses, 8u);
}

TEST(QuantUnit, MisalignedQntIdenticalAcrossDispatchPaths) {
  // The attribution must agree between the predecoded fast path, the
  // traced fast path and the legacy reference dispatch.
  const auto fast = run_misaligned_qnt(sim::CoreConfig::extended());
  const auto traced =
      run_misaligned_qnt(sim::CoreConfig::extended(), /*traced=*/true);
  sim::CoreConfig ref_cfg = sim::CoreConfig::extended();
  ref_cfg.reference_dispatch = true;
  const auto ref = run_misaligned_qnt(ref_cfg);

  for (const auto* r : {&traced, &ref}) {
    EXPECT_EQ(r->regs[r::a2], fast.regs[r::a2]);
    EXPECT_EQ(r->perf.cycles, fast.perf.cycles);
    EXPECT_EQ(r->perf.instructions, fast.perf.instructions);
    EXPECT_EQ(r->perf.qnt_stall_cycles, fast.perf.qnt_stall_cycles);
    EXPECT_EQ(r->perf.mem_stall_cycles, fast.perf.mem_stall_cycles);
  }
}

TEST(QuantUnit, QntAsFinalInstructionKeepsInvariants) {
  // pv.qnt immediately before the halting ecall: cycle accounting must
  // still reconcile (every cycle is base or exactly one stall cause).
  for (const bool misaligned : {false, true}) {
    Rng rng(33);
    const auto th = qnn::Thresholds::random(rng, 2, -50, 50);
    const addr_t base = misaligned ? 0x2001 : 0x2000;
    const auto res = run_program(
        [&](xasm::Assembler& a) {
          a.li(r::a0, 17);
          a.li(r::a1, static_cast<i32>(base));
          a.pv_qnt(2, r::a2, r::a0, r::a1);
        },
        sim::CoreConfig::extended(),
        [&](mem::Memory& mem, sim::Core&) { write_tree(mem, base, th); });
    EXPECT_EQ(sim::perf_invariant_violation(res.perf), "")
        << "misaligned=" << misaligned;
    EXPECT_EQ(res.perf.qnt_stall_cycles, 4u);  // 5-cycle crumb walk
  }
}

}  // namespace
}  // namespace xpulp
