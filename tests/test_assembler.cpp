// Assembler: label resolution, pseudo-instruction expansion, error
// handling, and program image loading.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "isa/decoder.hpp"
#include "sim_test_util.hpp"

namespace xpulp::xasm {
namespace {

namespace r = reg;

TEST(Assembler, ForwardAndBackwardLabels) {
  Assembler a(0);
  auto back = a.here();        // address 0
  a.nop();                     // 0
  auto fwd = a.new_label();
  a.beq(r::a0, r::a1, fwd);    // 4: forward offset +8
  a.nop();                     // 8
  a.bind(fwd);                 // 12
  a.j(back);                   // 12: backward offset -12
  Program p = a.finish();
  const auto b = isa::decode(p.words()[1], 4);
  EXPECT_EQ(b.imm, 8);
  const auto j = isa::decode(p.words()[3], 12);
  EXPECT_EQ(j.imm, -12);
}

TEST(Assembler, LiExpansion) {
  // Small immediates: single addi. Large: lui + addi with carry fix.
  {
    Assembler a(0);
    a.li(r::a0, 42);
    EXPECT_EQ(a.instruction_count(), 1u);
  }
  {
    Assembler a(0);
    a.li(r::a0, -2048);
    EXPECT_EQ(a.instruction_count(), 1u);
  }
  {
    Assembler a(0);
    a.li(r::a0, 0x12345678);
    EXPECT_EQ(a.instruction_count(), 2u);
  }
  {
    Assembler a(0);
    a.li(r::a0, 0x12345000);  // low part zero: lui only
    EXPECT_EQ(a.instruction_count(), 1u);
  }
}

class LiValues : public ::testing::TestWithParam<i32> {};

TEST_P(LiValues, MaterializesExactValue) {
  const i32 v = GetParam();
  auto res = test::run_program([&](Assembler& a) { a.li(r::a0, v); });
  EXPECT_EQ(res.regs[r::a0], static_cast<u32>(v));
}

INSTANTIATE_TEST_SUITE_P(
    Corners, LiValues,
    ::testing::Values(0, 1, -1, 2047, 2048, -2048, -2049, 0x7ff, 0x800,
                      0xfff, 0x1000, static_cast<i32>(0x80000000),
                      0x7fffffff, static_cast<i32>(0xfffff800),
                      static_cast<i32>(0xdeadbeef), 123456789));

TEST(Assembler, ErrorsOnUnboundLabel) {
  Assembler a(0);
  auto l = a.new_label();
  a.beq(r::a0, r::a1, l);
  EXPECT_THROW(a.finish(), AsmError);
}

TEST(Assembler, ErrorsOnDoubleBind) {
  Assembler a(0);
  auto l = a.new_label();
  a.bind(l);
  EXPECT_THROW(a.bind(l), AsmError);
}

TEST(Assembler, ErrorsOnDoubleFinish) {
  Assembler a(0);
  a.nop();
  a.finish();
  EXPECT_THROW(a.finish(), AsmError);
}

TEST(Assembler, ErrorsOnMisalignedBase) {
  EXPECT_THROW(Assembler(2), AsmError);
}

TEST(Assembler, ErrorsOnBadOperands) {
  Assembler a(0);
  EXPECT_THROW(a.lui(r::a0, 0x123), AsmError);         // low bits set
  EXPECT_THROW(a.p_extract(r::a0, r::a1, 0, 0), AsmError);   // zero width
  EXPECT_THROW(a.p_extract(r::a0, r::a1, 8, 30), AsmError);  // overflows 32
  EXPECT_THROW(a.lp_setupi(0, 32, a.new_label()), AsmError); // count > 31
  EXPECT_THROW(a.pv_qnt(3, r::a0, r::a1, r::a2), AsmError);  // bad width
}

TEST(Assembler, NonZeroBaseRelocatesBranches) {
  Assembler a(0x400);
  auto l = a.new_label();
  a.j(l);
  a.nop();
  a.bind(l);
  Program p = a.finish();
  EXPECT_EQ(p.base(), 0x400u);
  const auto j = isa::decode(p.words()[0], 0x400);
  EXPECT_EQ(j.imm, 8);  // offsets stay relative
}

TEST(Assembler, ProgramLoadsIntoMemory) {
  Assembler a(0x100);
  a.li(r::a0, 7);
  a.ecall();
  Program p = a.finish();
  mem::Memory m(4096);
  p.load(m);
  EXPECT_EQ(m.load_u32(0x100), p.words()[0]);
  EXPECT_EQ(p.size_bytes(), p.size_words() * 4);

  sim::Core core(m);
  core.reset(p.entry());
  core.run();
  EXPECT_EQ(core.reg(r::a0), 7u);
}

TEST(Assembler, CurrentAddrTracksEmission) {
  Assembler a(0x20);
  EXPECT_EQ(a.current_addr(), 0x20u);
  a.nop();
  a.nop();
  EXPECT_EQ(a.current_addr(), 0x28u);
  a.li(r::a0, 0x12345678);  // two instructions
  EXPECT_EQ(a.current_addr(), 0x30u);
}

}  // namespace
}  // namespace xpulp::xasm
