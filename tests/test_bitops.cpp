#include "common/bitops.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace xpulp {
namespace {

TEST(Bitops, BitsExtractsInclusiveRange) {
  EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
  EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefu);
  EXPECT_EQ(bits(0xdeadbeef, 31, 0), 0xdeadbeefu);
  EXPECT_EQ(bits(0xffffffff, 0, 0), 1u);
}

TEST(Bitops, LowMaskEdges) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(31), 0x7fffffffu);
  EXPECT_EQ(low_mask(32), 0xffffffffu);
}

TEST(Bitops, SignExtend) {
  EXPECT_EQ(sign_extend(0xf, 4), -1);
  EXPECT_EQ(sign_extend(0x7, 4), 7);
  EXPECT_EQ(sign_extend(0x8, 4), -8);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xffff, 16), -1);
  EXPECT_EQ(sign_extend(0x8000'0000u, 32), std::numeric_limits<i32>::min());
}

TEST(Bitops, InsertBitsRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const u32 v = rng.next_u32();
    const unsigned width = 1 + rng.next_u32() % 32;
    const unsigned lo = rng.next_u32() % (33 - width);
    const u32 field = rng.next_u32() & low_mask(width);
    const u32 merged = insert_bits(v, field, lo, width);
    EXPECT_EQ(bits(merged, lo + width - 1, lo), field);
    // Bits outside the field are untouched.
    const u32 mask = ~(low_mask(width) << lo);
    EXPECT_EQ(merged & mask, v & mask);
  }
}

TEST(Bitops, Saturation) {
  EXPECT_EQ(sat_signed(200, 8), 127);
  EXPECT_EQ(sat_signed(-200, 8), -128);
  EXPECT_EQ(sat_signed(5, 8), 5);
  EXPECT_EQ(sat_signed(i64{1} << 40, 32), std::numeric_limits<i32>::max());
  EXPECT_EQ(sat_unsigned(-1, 8), 0u);
  EXPECT_EQ(sat_unsigned(300, 8), 255u);
  EXPECT_EQ(sat_unsigned(300, 16), 300u);
}

TEST(Bitops, Rotate) {
  EXPECT_EQ(rotr32(0x80000001u, 1), 0xC0000000u);
  EXPECT_EQ(rotr32(0x12345678u, 0), 0x12345678u);
  EXPECT_EQ(rotr32(0x12345678u, 32), 0x12345678u);
  EXPECT_EQ(rotr32(0x12345678u, 8), 0x78123456u);
}

TEST(Bitops, FindFirstLastOne) {
  EXPECT_EQ(find_first_one(0), 32u);
  EXPECT_EQ(find_last_one(0), 32u);
  EXPECT_EQ(find_first_one(0x8), 3u);
  EXPECT_EQ(find_last_one(0x8), 3u);
  EXPECT_EQ(find_first_one(0xffffffffu), 0u);
  EXPECT_EQ(find_last_one(0xffffffffu), 31u);
}

TEST(Bitops, CountLeadingRedundantSign) {
  EXPECT_EQ(count_leading_redundant_sign(0), 0u);
  EXPECT_EQ(count_leading_redundant_sign(0xffffffffu), 31u);
  EXPECT_EQ(count_leading_redundant_sign(1), 30u);
  EXPECT_EQ(count_leading_redundant_sign(0x7fffffffu), 0u);
}

TEST(Bitops, HammingDistance) {
  EXPECT_EQ(hamming_distance(0, 0), 0u);
  EXPECT_EQ(hamming_distance(0, 0xffffffffu), 32u);
  EXPECT_EQ(hamming_distance(0b1010, 0b0101), 4u);
}

TEST(Bitops, Alignment) {
  EXPECT_TRUE(is_aligned(0, 4));
  EXPECT_TRUE(is_aligned(4, 4));
  EXPECT_FALSE(is_aligned(2, 4));
  EXPECT_TRUE(is_aligned(2, 2));
  EXPECT_FALSE(is_aligned(3, 2));
  EXPECT_TRUE(is_aligned(3, 1));
}

TEST(Rng, DeterministicAndInRange) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const i32 v = r.uniform(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
    const i32 s = r.signed_bits(4);
    EXPECT_GE(s, -8);
    EXPECT_LE(s, 7);
    EXPECT_LE(r.unsigned_bits(4), 15u);
  }
}

}  // namespace
}  // namespace xpulp
