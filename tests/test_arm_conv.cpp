// CMSIS-NN-style ARM convolution kernels vs the golden model, plus the
// performance relationships Fig. 8 relies on.
#include <gtest/gtest.h>

#include "armv7e/cmsis_conv.hpp"

namespace xpulp::armv7e {
namespace {

using kernels::ConvLayerData;
using qnn::ConvSpec;

ConvSpec spec(unsigned bits, int h = 6, int w = 6, int cin = 16, int cout = 8) {
  ConvSpec s;
  s.in_h = h;
  s.in_w = w;
  s.in_c = cin;
  s.out_c = cout;
  s.in_bits = s.w_bits = s.out_bits = bits;
  return s;
}

struct ArmCase {
  unsigned bits;
  ArmModel model;
};

class ArmConv : public ::testing::TestWithParam<ArmCase> {};

TEST_P(ArmConv, BitExactVsGolden) {
  const auto [bits, model] = GetParam();
  const auto data = ConvLayerData::random(spec(bits), 0xa31 + bits);
  const auto res = run_conv_layer_arm(data, model);
  const auto gold = data.golden();
  ASSERT_EQ(res.output.shape(), gold.shape());
  int bad = 0;
  for (int i = 0; i < gold.elems(); ++i) {
    if (res.output.flat(i) != gold.flat(i)) ++bad;
  }
  EXPECT_EQ(bad, 0);
  EXPECT_EQ(res.macs, data.spec.macs());
}

INSTANTIATE_TEST_SUITE_P(
    AllWidthsBothCores, ArmConv,
    ::testing::Values(ArmCase{8, ArmModel::kCortexM4},
                      ArmCase{8, ArmModel::kCortexM7},
                      ArmCase{4, ArmModel::kCortexM4},
                      ArmCase{4, ArmModel::kCortexM7},
                      ArmCase{2, ArmModel::kCortexM4},
                      ArmCase{2, ArmModel::kCortexM7}),
    [](const ::testing::TestParamInfo<ArmCase>& info) {
      return std::string("b") + std::to_string(info.param.bits) +
             (info.param.model == ArmModel::kCortexM4 ? "_m4" : "_m7");
    });

TEST(ArmConv, M7IsFasterThanM4InCycles) {
  for (unsigned bits : {8u, 4u, 2u}) {
    const auto data = ConvLayerData::random(spec(bits), 77);
    const auto m4 = run_conv_layer_arm(data, ArmModel::kCortexM4);
    const auto m7 = run_conv_layer_arm(data, ArmModel::kCortexM7);
    EXPECT_LT(m7.perf.cycles, m4.perf.cycles) << bits;
    EXPECT_GT(m7.perf.dual_issued_pairs, 0u);
  }
}

TEST(ArmConv, SubByteCostsMoreCyclesPerMacThan8Bit) {
  // Without sub-byte SIMD, quantization below 8 bits does not speed ARM up
  // (the paper's core observation).
  const auto d8 = ConvLayerData::random(spec(8), 5);
  const auto d4 = ConvLayerData::random(spec(4), 5);
  const auto r8 = run_conv_layer_arm(d8, ArmModel::kCortexM4);
  const auto r4 = run_conv_layer_arm(d4, ArmModel::kCortexM4);
  EXPECT_LT(r4.macs_per_cycle(), r8.macs_per_cycle());
}

TEST(ArmConv, PointwiseLayerWorks) {
  auto s = spec(4);
  s.k_h = s.k_w = 1;
  s.pad = 0;
  s.in_c = 32;
  const auto data = ConvLayerData::random(s, 6);
  const auto res = run_conv_layer_arm(data, ArmModel::kCortexM4);
  const auto gold = data.golden();
  for (int i = 0; i < gold.elems(); ++i) {
    ASSERT_EQ(res.output.flat(i), gold.flat(i));
  }
}

TEST(ArmConv, SmladDominatesTheInstructionMix) {
  const auto data = ConvLayerData::random(spec(8), 8);
  const auto res = run_conv_layer_arm(data, ArmModel::kCortexM4);
  // 2 MACs per SMLAD: the MAC count tracks the layer's MAC total.
  EXPECT_GE(res.perf.macs * 2, res.macs);
}

}  // namespace
}  // namespace xpulp::armv7e
