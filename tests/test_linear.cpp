// Fully-connected layer kernels vs the golden model.
#include <gtest/gtest.h>

#include "kernels/linear.hpp"

namespace xpulp::kernels {
namespace {

struct LinCase {
  int in_f, out_f;
  unsigned bits;
  ConvVariant v;
  bool ext;
};

class Linear : public ::testing::TestWithParam<LinCase> {};

TEST_P(Linear, BitExact) {
  const auto [in_f, out_f, bits, v, ext] = GetParam();
  const auto data = LinearLayerData::random(in_f, out_f, bits, 0x11 + bits);
  const auto cfg =
      ext ? sim::CoreConfig::extended() : sim::CoreConfig::ri5cy();
  const auto res = run_linear_layer(data, v, cfg);
  const auto gold = data.golden();
  ASSERT_EQ(res.output.shape(), (qnn::Shape{1, 1, out_f}));
  for (int i = 0; i < gold.elems(); ++i) {
    ASSERT_EQ(res.output.flat(i), gold.flat(i)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Linear,
    ::testing::Values(
        LinCase{64, 10, 4, ConvVariant::kXpulpNN_HwQ, true},
        LinCase{64, 10, 4, ConvVariant::kXpulpNN_SwQ, true},
        LinCase{64, 10, 4, ConvVariant::kXpulpV2_Sub, false},
        LinCase{128, 16, 2, ConvVariant::kXpulpNN_HwQ, true},
        LinCase{128, 16, 2, ConvVariant::kXpulpV2_Sub, false},
        LinCase{32, 8, 8, ConvVariant::kXpulpV2_8b, true},
        LinCase{32, 8, 8, ConvVariant::kXpulpV2_8b, false},
        LinCase{256, 32, 4, ConvVariant::kXpulpNN_HwQ, true}),
    [](const ::testing::TestParamInfo<LinCase>& info) {
      return "i" + std::to_string(info.param.in_f) + "_o" +
             std::to_string(info.param.out_f) + "_b" +
             std::to_string(info.param.bits) + "_v" +
             std::to_string(static_cast<int>(info.param.v)) +
             (info.param.ext ? "_ext" : "_base");
    });

TEST(Linear, MatchesLinearRef) {
  // The linear golden path and the conv golden path agree on a 1x1 layer.
  const auto data = LinearLayerData::random(64, 8, 4, 3);
  const auto via_linear = data.golden();
  const auto via_conv = data.as_conv().golden();
  EXPECT_EQ(via_linear, via_conv);
}

TEST(Linear, SubByteSpeedupHoldsForFcLayers) {
  const auto data = LinearLayerData::random(512, 32, 2, 5);
  const auto ext = run_linear_layer(data, ConvVariant::kXpulpNN_HwQ,
                                    sim::CoreConfig::extended());
  const auto base = run_linear_layer(data, ConvVariant::kXpulpV2_Sub,
                                     sim::CoreConfig::ri5cy());
  EXPECT_GT(static_cast<double>(base.perf.cycles) /
                static_cast<double>(ext.perf.cycles),
            4.0);
}

}  // namespace
}  // namespace xpulp::kernels
