// Shadow-memory unit tests: conflict detection semantics (write-write,
// both write-read directions), epoching, deduplication, and the
// static-vs-dynamic cross-validation contract.
#include <gtest/gtest.h>

#include "analysis/shadow.hpp"
#include "obs/registry.hpp"

namespace xpulp::analysis {
namespace {

TEST(Shadow, DisjointCoresStayClean) {
  ShadowMemory sh;
  sh.record(0, 10, 0x100, 0x1000, 4, /*is_store=*/true);
  sh.record(1, 10, 0x200, 0x1004, 4, /*is_store=*/true);
  sh.record(0, 11, 0x104, 0x1000, 4, /*is_store=*/false);
  EXPECT_TRUE(sh.clean());
  EXPECT_EQ(sh.stats().accesses, 3u);
  EXPECT_EQ(sh.stats().bytes_tracked, 8u);
}

TEST(Shadow, CrossCoreWriteWriteCaughtAtExactPcAndCycle) {
  ShadowMemory sh;
  sh.record(0, 10, 0x100, 0x1000, 4, /*is_store=*/true);
  sh.record(1, 17, 0x200, 0x1002, 2, /*is_store=*/true);  // partial overlap
  ASSERT_EQ(sh.conflicts().size(), 1u);
  const ShadowConflict& c = sh.conflicts().front();
  EXPECT_EQ(c.kind, DiagKind::kCrossCoreWriteWrite);
  EXPECT_EQ(c.core_a, 0);
  EXPECT_EQ(c.core_b, 1);
  EXPECT_EQ(c.pc_a, 0x100u);
  EXPECT_EQ(c.pc_b, 0x200u);
  EXPECT_EQ(c.cycle_a, 10u);
  EXPECT_EQ(c.cycle_b, 17u);
  EXPECT_EQ(c.addr, 0x1002u);
}

TEST(Shadow, WriteThenForeignReadIsReadWrite) {
  ShadowMemory sh;
  sh.record(0, 5, 0x100, 0x2000, 4, /*is_store=*/true);
  sh.record(1, 9, 0x300, 0x2000, 4, /*is_store=*/false);
  ASSERT_EQ(sh.conflicts().size(), 1u);
  EXPECT_EQ(sh.conflicts().front().kind, DiagKind::kCrossCoreReadWrite);
  EXPECT_EQ(sh.conflicts().front().pc_b, 0x300u);
}

TEST(Shadow, ForeignReadThenWriteIsReadWrite) {
  ShadowMemory sh;
  sh.record(1, 5, 0x300, 0x2000, 4, /*is_store=*/false);
  sh.record(0, 9, 0x100, 0x2000, 4, /*is_store=*/true);
  ASSERT_EQ(sh.conflicts().size(), 1u);
  const ShadowConflict& c = sh.conflicts().front();
  EXPECT_EQ(c.kind, DiagKind::kCrossCoreReadWrite);
  EXPECT_EQ(c.core_a, 1);  // the reader came first
  EXPECT_EQ(c.pc_a, 0x300u);
  EXPECT_EQ(c.pc_b, 0x100u);
}

TEST(Shadow, SameCoreNeverConflicts) {
  ShadowMemory sh;
  sh.record(0, 1, 0x100, 0x1000, 4, true);
  sh.record(0, 2, 0x104, 0x1000, 4, false);
  sh.record(0, 3, 0x108, 0x1000, 4, true);
  EXPECT_TRUE(sh.clean());
}

TEST(Shadow, ConflictsDedupByPcPairKeepingEarliest) {
  ShadowMemory sh;
  for (int i = 0; i < 16; ++i) {
    sh.record(0, 10 + i, 0x100, 0x1000 + 4u * static_cast<u32>(i), 4, true);
    sh.record(1, 20 + i, 0x200, 0x1000 + 4u * static_cast<u32>(i), 4, true);
  }
  ASSERT_EQ(sh.conflicts().size(), 1u);
  EXPECT_EQ(sh.conflicts().front().cycle_b, 20u);
}

TEST(Shadow, NewEpochForgetsHistory) {
  ShadowMemory sh;
  sh.record(0, 1, 0x100, 0x1000, 4, true);
  sh.new_epoch();
  sh.record(1, 1, 0x200, 0x1000, 4, true);  // no live writer anymore
  EXPECT_TRUE(sh.clean());
}

TEST(Shadow, ValidationAcceptsPredictedConflicts) {
  ShadowMemory sh;
  sh.record(0, 1, 0x100, 0x1000, 4, true);
  sh.record(1, 2, 0x200, 0x1000, 4, true);

  RaceReport rep;
  RaceConflict rc;
  rc.kind = DiagKind::kCrossCoreWriteWrite;
  rc.pc_a = 0x200;  // order-insensitive match
  rc.pc_b = 0x100;
  rep.conflicts.push_back(rc);
  EXPECT_TRUE(validate_against_shadow(rep, sh));
}

TEST(Shadow, ValidationRejectsUnpredictedConflicts) {
  ShadowMemory sh;
  sh.record(0, 1, 0x100, 0x1000, 4, true);
  sh.record(1, 2, 0x200, 0x1000, 4, true);
  std::string why;
  EXPECT_FALSE(validate_against_shadow(RaceReport{}, sh, &why));
  EXPECT_NE(why.find("not predicted"), std::string::npos);
}

TEST(Shadow, ValidationAcceptsUnprovableExplanations) {
  ShadowMemory sh;
  sh.record(0, 1, 0x100, 0x1000, 4, true);
  sh.record(1, 2, 0x200, 0x1000, 4, false);

  RaceReport rep;
  StridedAccess acc;
  acc.pc = 0x200;
  acc.addr = AVal::top();
  rep.unprovable.emplace_back(1, acc);
  EXPECT_TRUE(validate_against_shadow(rep, sh));
}

TEST(Shadow, StatsPublishToRegistry) {
  ShadowMemory sh;
  sh.record(0, 1, 0x100, 0x1000, 4, true);
  sh.record(1, 2, 0x200, 0x1000, 4, true);
  obs::Registry reg;
  add_shadow_stats(reg, "sim.race.shadow", sh);
  EXPECT_TRUE(reg.contains("sim.race.shadow.conflicts"));
  EXPECT_TRUE(reg.contains("sim.race.shadow.clean"));
  obs::Registry reg2;
  add_race_stats(reg2, "sim.race", RaceReport{});
  EXPECT_TRUE(reg2.contains("sim.race.clean"));
}

}  // namespace
}  // namespace xpulp::analysis
