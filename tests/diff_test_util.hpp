// Shared helpers for the differential test suites (dispatch diff, snapshot
// diff): a complete final-machine-state record, an exhaustive equality
// check over every PerfCounters field, and the random always-terminating
// program generator.
#pragma once

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "isa/encoding.hpp"
#include "mem/memory.hpp"
#include "sim/core.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::test {

struct FinalState {
  std::array<u32, 32> regs{};
  addr_t pc = 0;
  sim::HaltReason reason = sim::HaltReason::kRunning;
  sim::PerfCounters perf;
  std::vector<u8> mem;
};

/// Snapshot the observable machine state (registers, pc, halt reason, perf
/// counters, full memory image) of a core that has finished running.
inline FinalState final_state_of(const sim::Core& core,
                                 const mem::Memory& mem) {
  FinalState s;
  s.reason = core.halt_reason();
  s.pc = core.pc();
  for (unsigned i = 0; i < 32; ++i) s.regs[i] = core.reg(i);
  s.perf = core.perf();
  s.mem.resize(mem.size());
  mem.read_block(0, s.mem);
  return s;
}

inline FinalState run_mode(const xasm::Program& prog, sim::CoreConfig cfg,
                           bool reference, u64 max_instr = 2'000'000) {
  cfg.reference_dispatch = reference;
  mem::Memory mem;
  prog.load(mem);
  sim::Core core(mem, std::move(cfg));
  core.reset(prog.entry(), prog.base() + prog.size_bytes());
  core.run(max_instr);
  return final_state_of(core, mem);
}

/// Third dispatch mode: the fast path with the superblock engine forced
/// on, regardless of the XPULP_SUPERBLOCK environment default.
inline FinalState run_mode_superblock(const xasm::Program& prog,
                                      sim::CoreConfig cfg,
                                      u64 max_instr = 2'000'000) {
  cfg.reference_dispatch = false;
  cfg.superblock = true;
  mem::Memory mem;
  prog.load(mem);
  sim::Core core(mem, std::move(cfg));
  core.reset(prog.entry(), prog.base() + prog.size_bytes());
  core.run(max_instr);
  return final_state_of(core, mem);
}

/// Every field must match: the fast path / a restored checkpoint is an
/// optimization of the host interpreter, never of the modelled timing.
inline void expect_identical(const FinalState& ref, const FinalState& fast) {
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(ref.regs[i], fast.regs[i]) << "x" << i;
  }
  EXPECT_EQ(ref.pc, fast.pc);
  EXPECT_EQ(ref.reason, fast.reason);
  EXPECT_EQ(ref.mem, fast.mem);

  const sim::PerfCounters& a = ref.perf;
  const sim::PerfCounters& b = fast.perf;
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.taken_branches, b.taken_branches);
  EXPECT_EQ(a.not_taken_branches, b.not_taken_branches);
  EXPECT_EQ(a.jumps, b.jumps);
  EXPECT_EQ(a.branch_stall_cycles, b.branch_stall_cycles);
  EXPECT_EQ(a.load_use_stall_cycles, b.load_use_stall_cycles);
  EXPECT_EQ(a.mem_stall_cycles, b.mem_stall_cycles);
  EXPECT_EQ(a.mul_div_stall_cycles, b.mul_div_stall_cycles);
  EXPECT_EQ(a.hwloop_backedges, b.hwloop_backedges);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.scalar_alu_ops, b.scalar_alu_ops);
  EXPECT_EQ(a.mul_ops, b.mul_ops);
  EXPECT_EQ(a.div_ops, b.div_ops);
  EXPECT_EQ(a.simd_alu_ops, b.simd_alu_ops);
  EXPECT_EQ(a.qnt_ops, b.qnt_ops);
  EXPECT_EQ(a.qnt_stall_cycles, b.qnt_stall_cycles);
  EXPECT_EQ(a.csr_ops, b.csr_ops);
  EXPECT_EQ(a.sys_ops, b.sys_ops);
  EXPECT_EQ(a.mac_ops, b.mac_ops);
  EXPECT_EQ(a.dotp_ops, b.dotp_ops);
  EXPECT_EQ(a.mixed_dotp_ops, b.mixed_dotp_ops);
  EXPECT_EQ(a.lsu_data_toggles, b.lsu_data_toggles);
}

/// One random instruction into the current basic block. Destinations avoid
/// s0/s1 (x8/x9): they anchor the only legal data pointers.
inline void random_op(xasm::Assembler& a, Rng& rng) {
  static constexpr u8 kDests[] = {5, 6, 7, 10, 11, 12, 13, 14, 15};
  const u8 rd = kDests[rng.uniform(0, 8)];
  const u8 rs1 = static_cast<u8>(rng.uniform(5, 15));
  const u8 rs2 = kDests[rng.uniform(0, 8)];
  switch (rng.uniform(0, 25)) {
    case 0: a.add(rd, rs1, rs2); break;
    case 1: a.sub(rd, rs1, rs2); break;
    case 2: a.mul(rd, rs1, rs2); break;
    case 3: a.mulh(rd, rs1, rs2); break;
    case 4: a.div(rd, rs1, rs2); break;
    case 5: a.remu(rd, rs1, rs2); break;
    case 6: a.p_max(rd, rs1, rs2); break;
    case 7: a.p_mac(rd, rs1, rs2); break;
    case 8: a.pv_add(isa::SimdFmt::kN, rd, rs1, rs2); break;
    case 9: a.pv_sdotusp(isa::SimdFmt::kC, rd, rs1, rs2); break;
    case 10: a.pv_sdotsp(isa::SimdFmt::kB, rd, rs1, rs2); break;
    case 11: a.pv_shuffle(isa::SimdFmt::kB, rd, rs1, rs2); break;
    // Loads feed the load-use hazard model; keep them frequent.
    case 12: a.lw(rd, xasm::reg::s0, rng.uniform(0, 500) * 4); break;
    case 13: a.lbu(rd, xasm::reg::s0, rng.uniform(0, 2000)); break;
    case 14: a.sw(rd, xasm::reg::s0, rng.uniform(0, 500) * 4); break;
    case 15: a.p_extractu(rd, rs1, 1 + rng.uniform(0, 7),
                          rng.uniform(0, 24)); break;
    case 16: a.srai(rd, rs1, static_cast<u32>(rng.uniform(0, 31))); break;
    case 17: a.p_clip(rd, rs1, 1 + static_cast<u32>(rng.uniform(0, 15)));
             break;
    // Post-increment / reg-offset addressing: these carry their mode in the
    // packed decode flags on the fast path. A scratch base keeps s0 stable;
    // rd == base is legal and exercises the writeback-ordering edge.
    case 18:
      a.addi(7, xasm::reg::s0, rng.uniform(0, 64) * 4);
      a.p_lw_post(rd, 7, rng.uniform(-16, 16) * 4);
      break;
    case 19:
      a.addi(6, 0, rng.uniform(0, 127) * 4);
      a.p_lw_rr(rd, xasm::reg::s0, 6);
      break;
    case 20:
      a.addi(7, xasm::reg::s0, rng.uniform(0, 64) * 4);
      a.p_sw_post(rd, 7, rng.uniform(-16, 16) * 4);
      break;
    // Remaining dot-product shapes: 16-bit lanes and scalar-replicated
    // operands go through different decode-specialized kernels.
    case 21: a.pv_dotup(isa::SimdFmt::kH, rd, rs1, rs2); break;
    case 22: a.pv_sdotsp(isa::SimdFmt::kBSc, rd, rs1, rs2); break;
    // Mixed virtual dots read their operand formats from the mpc CSR, and
    // mid-program CSR writes force superblock eviction and re-specialized
    // decode — the selector stays in 0..2 (3 is reserved and would trap).
    case 23: a.pv_mlsdotusp(rd, rs1, rs2); break;
    case 24: a.pv_mldotsp(rd, rs1, rs2); break;
    case 25:
      a.csrrwi(rd, isa::kMpcCsr, static_cast<u32>(rng.uniform(0, 2)));
      break;
  }
}

/// A random but always-terminating program: straight-line blocks mixed
/// with forward branches, immediate-compare branches and nested hardware
/// loops (the structures whose dispatch differs most between the modes).
inline xasm::Program random_program(u64 seed) {
  Rng rng(seed);
  xasm::Assembler a(0);
  a.li(xasm::reg::s0, 0x8000);  // data pointer (mapped, far from code)
  a.li(xasm::reg::s1, 3);       // small loop count

  const int blocks = 12;
  for (int b = 0; b < blocks; ++b) {
    switch (rng.uniform(0, 3)) {
      case 0: {  // plain straight-line block
        for (int i = 0; i < 12; ++i) random_op(a, rng);
        break;
      }
      case 1: {  // forward conditional branch over a few ops
        const xasm::Assembler::Label skip = a.new_label();
        const u8 rs1 = static_cast<u8>(rng.uniform(5, 15));
        const u8 rs2 = static_cast<u8>(rng.uniform(5, 15));
        switch (rng.uniform(0, 3)) {
          case 0: a.beq(rs1, rs2, skip); break;
          case 1: a.bne(rs1, rs2, skip); break;
          case 2: a.blt(rs1, rs2, skip); break;
          case 3: a.p_beqimm(rs1, rng.uniform(-16, 15), skip); break;
        }
        for (int i = 0; i < 4; ++i) random_op(a, rng);
        a.bind(skip);
        break;
      }
      case 2: {  // hardware loop (immediate count)
        const xasm::Assembler::Label end = a.new_label();
        a.lp_setupi(0, static_cast<u32>(rng.uniform(2, 6)), end);
        for (int i = 0; i < 5; ++i) random_op(a, rng);
        a.bind(end);
        break;
      }
      case 3: {  // nested hardware loops (register count in L1)
        const xasm::Assembler::Label end1 = a.new_label();
        const xasm::Assembler::Label end0 = a.new_label();
        a.lp_setup(1, xasm::reg::s1, end1);
        a.lp_setupi(0, static_cast<u32>(rng.uniform(2, 4)), end0);
        for (int i = 0; i < 3; ++i) random_op(a, rng);
        a.bind(end0);
        random_op(a, rng);
        a.bind(end1);
        break;
      }
    }
  }
  a.ecall();
  return a.finish();
}

}  // namespace xpulp::test
