// Staircase thresholds: Eytzinger construction, serialization layout, and
// the rank property the hardware walk depends on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "qnn/thresholds.hpp"

namespace xpulp::qnn {
namespace {

TEST(Thresholds, RejectsMalformedInput) {
  EXPECT_THROW(Thresholds(4, {1, 2, 3}), std::invalid_argument);  // wrong size
  EXPECT_THROW(Thresholds(2, {3, 2, 1}), std::invalid_argument);  // not sorted
  EXPECT_THROW(Thresholds(0, {}), std::invalid_argument);
}

TEST(Thresholds, QuantizeIsTheRankFunction) {
  const Thresholds t(2, {-10, 0, 10});
  EXPECT_EQ(t.quantize(-11), 0u);
  EXPECT_EQ(t.quantize(-10), 1u);  // x >= t counts
  EXPECT_EQ(t.quantize(-1), 1u);
  EXPECT_EQ(t.quantize(0), 2u);
  EXPECT_EQ(t.quantize(9), 2u);
  EXPECT_EQ(t.quantize(10), 3u);
  EXPECT_EQ(t.quantize(10000), 3u);
}

TEST(Thresholds, EytzingerIsBfsOfTheSortedArray) {
  // Sorted 1..7 for Q=3 -> BFS: 4, 2, 6, 1, 3, 5, 7.
  const Thresholds t(3, {1, 2, 3, 4, 5, 6, 7});
  const auto& e = t.eytzinger();
  ASSERT_EQ(e.size(), 8u);  // padded to 2^Q
  EXPECT_EQ(e[0], 4);
  EXPECT_EQ(e[1], 2);
  EXPECT_EQ(e[2], 6);
  EXPECT_EQ(e[3], 1);
  EXPECT_EQ(e[4], 3);
  EXPECT_EQ(e[5], 5);
  EXPECT_EQ(e[6], 7);
  EXPECT_EQ(e[7], std::numeric_limits<i16>::max());  // padding slot
}

TEST(Thresholds, TreeWalkEqualsRankProperty) {
  // A pure-host walk of the Eytzinger array must equal the linear count,
  // for random trees AND trees with duplicates.
  Rng rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    const unsigned q = (trial % 2) ? 4 : 2;
    Thresholds t = Thresholds::random(rng, q, -500, 500);
    for (int k = 0; k < 50; ++k) {
      const i32 x = rng.uniform(-600, 600);
      u32 idx = 0, code = 0;
      for (unsigned level = 0; level < q; ++level) {
        const u32 b = (x >= t.eytzinger()[idx]) ? 1 : 0;
        code = (code << 1) | b;
        idx = 2 * idx + 1 + b;
      }
      ASSERT_EQ(code, t.quantize(x)) << "q=" << q << " x=" << x;
    }
  }
}

TEST(Thresholds, DuplicateValuesRankCorrectly) {
  const Thresholds t(2, {5, 5, 9});
  for (const i32 x : {4, 5, 6, 9, 10}) {
    u32 idx = 0, code = 0;
    for (unsigned level = 0; level < 2; ++level) {
      const u32 b = (x >= t.eytzinger()[idx]) ? 1 : 0;
      code = (code << 1) | b;
      idx = 2 * idx + 1 + b;
    }
    EXPECT_EQ(code, t.quantize(x)) << x;
  }
}

TEST(Thresholds, UniformStaircase) {
  const Thresholds t = Thresholds::uniform(4, 10);
  EXPECT_EQ(t.sorted().size(), 15u);
  // Steps are 10 apart and centered.
  for (size_t i = 1; i < t.sorted().size(); ++i) {
    EXPECT_EQ(t.sorted()[i] - t.sorted()[i - 1], 10);
  }
  EXPECT_EQ(t.quantize(t.sorted()[7]), 8u);
}

TEST(Thresholds, StrideBytes) {
  EXPECT_EQ(Thresholds::uniform(4, 1).stride_bytes(), 32u);
  EXPECT_EQ(Thresholds::uniform(2, 1).stride_bytes(), 8u);
}

TEST(LayerThresholds, SerializeLayout) {
  Rng rng(3);
  const auto lt = LayerThresholds::random(rng, 2, 3, -100, 100);
  const auto bytes = lt.serialize();
  ASSERT_EQ(bytes.size(), 3u * 8u);
  for (int c = 0; c < 3; ++c) {
    const auto& tree = lt.channel(c).eytzinger();
    for (size_t i = 0; i < tree.size(); ++i) {
      const u16 lo = bytes[static_cast<size_t>(c) * 8 + i * 2];
      const u16 hi = bytes[static_cast<size_t>(c) * 8 + i * 2 + 1];
      EXPECT_EQ(static_cast<i16>(lo | (hi << 8)), tree[i]);
    }
  }
}

TEST(LayerThresholds, RejectsMixedWidths) {
  Rng rng(4);
  std::vector<Thresholds> mixed;
  mixed.push_back(Thresholds::random(rng, 4, -10, 10));
  mixed.push_back(Thresholds::random(rng, 2, -10, 10));
  EXPECT_THROW(LayerThresholds(4, std::move(mixed)), std::invalid_argument);
}

}  // namespace
}  // namespace xpulp::qnn
