// Golden reference layers: internal consistency (im2col x filter ==
// accumulate), pooling/ReLU semantics, and the layer-data generator's
// invariants.
#include <gtest/gtest.h>

#include "kernels/conv_layer.hpp"
#include "qnn/ref_layers.hpp"

namespace xpulp::qnn {
namespace {

ConvSpec small_spec(unsigned bits) {
  ConvSpec s;
  s.in_h = s.in_w = 6;
  s.in_c = 8;
  s.out_c = 4;
  s.in_bits = s.w_bits = s.out_bits = bits;
  return s;
}

TEST(RefLayers, Im2colMatchesAccumulate) {
  const ConvSpec s = small_spec(4);
  auto data = kernels::ConvLayerData::random(s, 1);
  for (int oy : {0, 2, 5}) {
    for (int ox : {0, 3, 5}) {
      const auto col = im2col_ref(data.input, s, oy, ox);
      ASSERT_EQ(static_cast<int>(col.size()), s.filter_elems());
      for (int oc = 0; oc < s.out_c; ++oc) {
        i32 dot = 0;
        for (int i = 0; i < s.filter_elems(); ++i) {
          dot += col[static_cast<size_t>(i)] * data.weights.flat(oc, i);
        }
        EXPECT_EQ(dot, conv_accumulate(data.input, data.weights, s, oy, ox, oc));
      }
    }
  }
}

TEST(RefLayers, Im2colZeroPadsBorders) {
  const ConvSpec s = small_spec(4);
  Tensor in({s.in_h, s.in_w, s.in_c});
  for (int i = 0; i < in.elems(); ++i) in.flat(i) = 7;
  const auto corner = im2col_ref(in, s, 0, 0);
  // Top-left 3x3 window: first row and first column of the window are pad.
  for (int c = 0; c < s.in_c; ++c) {
    EXPECT_EQ(corner[static_cast<size_t>(c)], 0);                    // (ky=0,kx=0)
    EXPECT_EQ(corner[static_cast<size_t>(3 * s.in_c + c)], 0);       // (1,0)
    EXPECT_EQ(corner[static_cast<size_t>(4 * s.in_c + c)], 7);       // (1,1)
  }
}

TEST(RefLayers, OutputGeometry) {
  ConvSpec s = small_spec(8);
  EXPECT_EQ(s.out_h(), 6);
  EXPECT_EQ(s.out_w(), 6);
  s.pad = 0;
  EXPECT_EQ(s.out_h(), 4);
  s.stride = 2;
  EXPECT_EQ(s.out_h(), 2);
  EXPECT_EQ(small_spec(8).macs(),
            static_cast<u64>(6) * 6 * 4 * 3 * 3 * 8);
}

TEST(RefLayers, ConvRefAppliesPerChannelThresholds) {
  const ConvSpec s = small_spec(2);
  auto data = kernels::ConvLayerData::random(s, 2);
  const Tensor out = conv2d_ref(data.input, data.weights, data.thresholds, s);
  for (int oy = 0; oy < s.out_h(); ++oy) {
    for (int ox = 0; ox < s.out_w(); ++ox) {
      for (int oc = 0; oc < s.out_c; ++oc) {
        const i32 acc = conv_accumulate(data.input, data.weights, s, oy, ox, oc);
        EXPECT_EQ(out.at(oy, ox, oc),
                  static_cast<i32>(data.thresholds.channel(oc).quantize(acc)));
      }
    }
  }
}

TEST(RefLayers, Conv8bShiftClamp) {
  ConvSpec s = small_spec(8);
  auto data = kernels::ConvLayerData::random(s, 3);
  s = data.spec;  // generator picked the shift
  const Tensor out = conv2d_ref_u8(data.input, data.weights, s);
  for (int i = 0; i < out.elems(); ++i) {
    EXPECT_GE(out.flat(i), 0);
    EXPECT_LE(out.flat(i), 255);
  }
}

TEST(RefLayers, MaxPool) {
  Tensor in({2, 2, 2});
  in.at(0, 0, 0) = 1; in.at(0, 1, 0) = 9; in.at(1, 0, 0) = 3; in.at(1, 1, 0) = 4;
  in.at(0, 0, 1) = 5; in.at(0, 1, 1) = 2; in.at(1, 0, 1) = 8; in.at(1, 1, 1) = 0;
  const Tensor out = maxpool2x2_ref(in);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2}));
  EXPECT_EQ(out.at(0, 0, 0), 9);
  EXPECT_EQ(out.at(0, 0, 1), 8);
}

TEST(RefLayers, AvgPoolIsCascaded) {
  Tensor in({2, 2, 1});
  in.at(0, 0, 0) = 1; in.at(0, 1, 0) = 2; in.at(1, 0, 0) = 3; in.at(1, 1, 0) = 4;
  // Cascaded: ((1+2)>>1 + (3+4)>>1) >> 1 = (1 + 3) >> 1 = 2.
  EXPECT_EQ(avgpool2x2_ref(in).at(0, 0, 0), 2);
}

TEST(RefLayers, Relu) {
  Tensor in({1, 1, 4});
  in.flat(0) = -3; in.flat(1) = 0; in.flat(2) = 5; in.flat(3) = -1;
  const Tensor out = relu_ref(in);
  EXPECT_EQ(out.flat(0), 0);
  EXPECT_EQ(out.flat(1), 0);
  EXPECT_EQ(out.flat(2), 5);
  EXPECT_EQ(out.flat(3), 0);
}

TEST(RefLayers, LinearLayer) {
  Tensor in({1, 1, 4});
  for (int i = 0; i < 4; ++i) in.flat(i) = i + 1;
  FilterBank w(2, {1, 1, 4});
  for (int i = 0; i < 4; ++i) {
    w.flat(0, i) = 1;
    w.flat(1, i) = (i % 2) ? -1 : 1;
  }
  // acc0 = 10, acc1 = 1-2+3-4 = -2.
  std::vector<Thresholds> th;
  th.push_back(Thresholds(2, {0, 5, 20}));
  th.push_back(Thresholds(2, {-10, -5, 0}));
  const LayerThresholds lt(2, std::move(th));
  const Tensor out = linear_ref(in, w, lt);
  EXPECT_EQ(out.at(0, 0, 0), 2);  // 10 >= 0 and >= 5, but < 20
  EXPECT_EQ(out.at(0, 0, 1), 2);  // -2 >= -10 and >= -5, but < 0
}

TEST(RefLayers, DataGeneratorInvariants) {
  for (unsigned bits : {2u, 4u}) {
    const ConvSpec s = small_spec(bits);
    auto data = kernels::ConvLayerData::random(s, 17);
    const i32 amax = static_cast<i32>((1u << bits) - 1);
    for (int i = 0; i < data.input.elems(); ++i) {
      EXPECT_GE(data.input.flat(i), 0);
      EXPECT_LE(data.input.flat(i), amax);
    }
    const i32 wlim = 1 << (bits - 1);
    for (const i32 w : data.weights.data()) {
      EXPECT_GE(w, -wlim);
      EXPECT_LT(w, wlim);
    }
    EXPECT_EQ(data.thresholds.channels(), s.out_c);
    // The golden output uses every code level somewhere (quantile-derived
    // thresholds guarantee balanced codes).
    const Tensor g = data.golden();
    std::vector<int> hist(1u << bits, 0);
    for (int i = 0; i < g.elems(); ++i) hist[static_cast<size_t>(g.flat(i))]++;
    for (const int h : hist) EXPECT_GT(h, 0);
  }
}

}  // namespace
}  // namespace xpulp::qnn
