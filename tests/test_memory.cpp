#include "mem/memory.hpp"

#include <gtest/gtest.h>

namespace xpulp::mem {
namespace {

TEST(Memory, LittleEndianTypedAccess) {
  Memory m(1024);
  m.store_u32(0, 0x11223344u);
  EXPECT_EQ(m.load_u8(0), 0x44u);
  EXPECT_EQ(m.load_u8(3), 0x11u);
  EXPECT_EQ(m.load_u16(0), 0x3344u);
  EXPECT_EQ(m.load_u16(2), 0x1122u);
  EXPECT_EQ(m.load_u32(0), 0x11223344u);
  m.store_u16(4, 0xbeefu);
  m.store_u8(6, 0x7f);
  EXPECT_EQ(m.load_u32(4), 0x007fbeefu);
}

TEST(Memory, GenericAccessZeroExtends) {
  Memory m(64);
  m.store(0, 0xffffffffu, 1);
  EXPECT_EQ(m.load(0, 1), 0xffu);
  EXPECT_EQ(m.load(0, 2), 0xffu);
  m.store(8, 0xabcd1234u, 2);
  EXPECT_EQ(m.load(8, 2), 0x1234u);
}

TEST(Memory, BoundsFaults) {
  Memory m(16);
  EXPECT_NO_THROW(m.load_u32(12));
  EXPECT_THROW(m.load_u32(13), MemoryFault);
  EXPECT_THROW(m.load_u8(16), MemoryFault);
  EXPECT_THROW(m.store_u16(15, 0), MemoryFault);
  EXPECT_THROW(m.load_u32(0xfffffffcu), MemoryFault);
  try {
    m.store_u32(20, 1);
    FAIL();
  } catch (const MemoryFault& f) {
    EXPECT_EQ(f.addr(), 20u);
    EXPECT_EQ(f.size(), 4u);
    EXPECT_TRUE(f.is_store());
  }
}

TEST(Memory, BlockTransfer) {
  Memory m(64);
  const std::vector<u8> data{1, 2, 3, 4, 5};
  m.write_block(10, data);
  std::vector<u8> back(5);
  m.read_block(10, back);
  EXPECT_EQ(back, data);
  EXPECT_THROW(m.write_block(62, data), MemoryFault);
  m.fill(0, 0xaa, 4);
  EXPECT_EQ(m.load_u32(0), 0xaaaaaaaau);
}

TEST(Memory, AccessStatsAndMisalignment) {
  Memory m(128);
  EXPECT_EQ(m.access_cycles(0, 4, false), 0u);   // aligned: no stall
  EXPECT_EQ(m.access_cycles(2, 4, false), 1u);   // misaligned word
  EXPECT_EQ(m.access_cycles(1, 2, true), 1u);    // misaligned half
  EXPECT_EQ(m.access_cycles(3, 1, true), 0u);    // bytes always aligned
  const MemStats& s = m.stats();
  EXPECT_EQ(s.loads, 2u);
  EXPECT_EQ(s.stores, 2u);
  EXPECT_EQ(s.load_bytes, 8u);
  EXPECT_EQ(s.store_bytes, 3u);
  EXPECT_EQ(s.misaligned_accesses, 2u);
  m.reset_stats();
  EXPECT_EQ(m.stats().loads, 0u);
}

TEST(Memory, ContentionInjection) {
  Memory m(128);
  m.set_contention_period(3);
  unsigned stalls = 0;
  for (int i = 0; i < 9; ++i) stalls += m.access_cycles(0, 4, false);
  EXPECT_EQ(stalls, 3u);
  EXPECT_EQ(m.stats().contention_stalls, 3u);
}

TEST(Memory, DefaultSizeIsPulpissimo) {
  Memory m;
  EXPECT_EQ(m.size(), 512u * 1024u);
}

TEST(Memory, StraddlingAccessTrapsWithoutCharging) {
  // A misaligned access whose split second transaction falls past the SRAM
  // upper bound must trap with *no* side effects: no load/store count, no
  // misalignment count, no stall charged. (Regression: the fault used to be
  // raised by the data path only after access_cycles had already mutated
  // the statistics, leaving MemStats inconsistent with the core's
  // PerfCounters on the trapping path.)
  Memory m(128);
  struct Case {
    addr_t addr;
    unsigned size;
    bool store;
  };
  const Case cases[] = {
      {127, 4, false}, {126, 4, false}, {125, 4, true},  // word straddles
      {127, 2, false}, {127, 2, true},                   // halfword straddles
  };
  for (const Case& c : cases) {
    EXPECT_THROW(m.access_cycles(c.addr, c.size, c.store), MemoryFault)
        << "addr=" << c.addr << " size=" << c.size;
  }
  const MemStats& s = m.stats();
  EXPECT_EQ(s.loads, 0u);
  EXPECT_EQ(s.stores, 0u);
  EXPECT_EQ(s.load_bytes, 0u);
  EXPECT_EQ(s.store_bytes, 0u);
  EXPECT_EQ(s.misaligned_accesses, 0u);
  EXPECT_EQ(s.contention_stalls, 0u);
}

TEST(Memory, StraddlingAccessDoesNotAdvanceContentionPhase) {
  // The contention injector's access counter must not tick on the trapping
  // path either, or the injection phase would diverge between a run that
  // faults and one that does not.
  Memory m(128);
  m.set_contention_period(2);
  EXPECT_THROW(m.access_cycles(126, 4, false), MemoryFault);
  EXPECT_EQ(m.access_counter(), 0u);
  EXPECT_EQ(m.access_cycles(0, 4, false), 0u);  // access 1 of period 2
  EXPECT_EQ(m.access_cycles(0, 4, false), 1u);  // access 2: contention stall
  EXPECT_EQ(m.stats().contention_stalls, 1u);
}

}  // namespace
}  // namespace xpulp::mem
