// ProgramAnalyzer unit tests: every diagnostic kind has a positive case
// (a program that must trigger it) and a negative case (the corrected
// program stays clean of that kind). Programs are built with the real
// assembler where possible; lenient/illegal encodings the assembler
// refuses to emit are fed in as raw words.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "analysis/analyzer.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::analysis {
namespace {

namespace r = xasm::reg;
using isa::SimdFmt;

AnalysisReport analyze(const std::function<void(xasm::Assembler&)>& body,
                       AnalyzerOptions opt = {}) {
  xasm::Assembler a(0);
  body(a);
  return ProgramAnalyzer(opt).analyze(a.finish());
}

AnalysisReport analyze_words(const std::vector<u32>& words,
                             AnalyzerOptions opt = {}, addr_t entry = 0) {
  std::vector<u8> bytes;
  for (const u32 w : words) {
    bytes.push_back(static_cast<u8>(w));
    bytes.push_back(static_cast<u8>(w >> 8));
    bytes.push_back(static_cast<u8>(w >> 16));
    bytes.push_back(static_cast<u8>(w >> 24));
  }
  return ProgramAnalyzer(opt).analyze(0, bytes, entry);
}

constexpr u32 kEcall = 0x00000073;

// ---- kIllegalEncoding ----

TEST(Analyzer, IllegalEncodingFlagged) {
  // Major opcode 0x7f is unused in RV32IMC + Xpulp.
  const auto rep = analyze_words({0x0000007fu, kEcall});
  EXPECT_GE(rep.count(DiagKind::kIllegalEncoding), 1u);
  EXPECT_TRUE(rep.has_errors());
}

TEST(Analyzer, LegalProgramHasNoIllegalEncoding) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 1);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kIllegalEncoding), 0u);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

// ---- kNonCanonicalEncoding ----

TEST(Analyzer, NonCanonicalFenceFlagged) {
  // MISC-MEM with funct3 != 0 decodes leniently as fence but is not the
  // canonical form the encoder emits.
  const auto rep = analyze_words({0x0000100fu, kEcall});
  EXPECT_GE(rep.count(DiagKind::kNonCanonicalEncoding), 1u);
}

TEST(Analyzer, AssembledOutputIsCanonical) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 1);
    a.li(r::a1, 2);
    a.p_mac(r::a0, r::a1, r::a1);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kNonCanonicalEncoding), 0u);
}

// ---- kUnreachableCode ----

TEST(Analyzer, DeadCodeAfterJumpFlagged) {
  const auto rep = analyze([](xasm::Assembler& a) {
    const auto l = a.new_label();
    a.j(l);
    a.nop();  // skipped by the jump, no path leads here
    a.nop();
    a.bind(l);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kUnreachableCode), 1u);  // coalesced run
}

TEST(Analyzer, FullyReachableProgramClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    const auto l = a.new_label();
    a.j(l);
    a.bind(l);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kUnreachableCode), 0u);
}

// ---- kBadJumpTarget ----

TEST(Analyzer, JumpPastImageEndFlagged) {
  // jal x0, +16 in a 2-word image.
  const auto rep = analyze_words({0x0100006fu, kEcall});
  EXPECT_GE(rep.count(DiagKind::kBadJumpTarget), 1u);
}

TEST(Analyzer, EntryOffBoundaryFlagged) {
  const auto rep = analyze_words({kEcall}, {}, /*entry=*/2);
  EXPECT_GE(rep.count(DiagKind::kBadJumpTarget), 1u);
}

TEST(Analyzer, InImageJumpClean) {
  // jal x0, +4 lands on the ecall.
  const auto rep = analyze_words({0x0040006fu, kEcall});
  EXPECT_EQ(rep.count(DiagKind::kBadJumpTarget), 0u);
}

// ---- kMissingIsaFeature ----

TEST(Analyzer, SimdOnBaseCoreFlagged) {
  AnalyzerOptions opt;
  opt.xpulpv2 = false;
  opt.xpulpnn = false;
  opt.hwloops = false;
  const auto rep = analyze(
      [](xasm::Assembler& a) {
        a.li(r::a0, 1);
        a.li(r::a1, 2);
        a.pv_add(SimdFmt::kB, r::a2, r::a0, r::a1);
        a.ecall();
      },
      opt);
  EXPECT_GE(rep.count(DiagKind::kMissingIsaFeature), 1u);
}

TEST(Analyzer, HwloopWithoutHwloopSupportFlagged) {
  AnalyzerOptions opt;
  opt.hwloops = false;
  const auto rep = analyze(
      [](xasm::Assembler& a) {
        a.li(r::a0, 0);
        const auto end = a.new_label();
        a.lp_setupi(0, 3, end);
        a.addi(r::a0, r::a0, 1);
        a.addi(r::a0, r::a0, 1);
        a.bind(end);
        a.ecall();
      },
      opt);
  EXPECT_GE(rep.count(DiagKind::kMissingIsaFeature), 1u);
}

TEST(Analyzer, SimdOnExtendedCoreClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 1);
    a.li(r::a1, 2);
    a.pv_add(SimdFmt::kB, r::a2, r::a0, r::a1);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kMissingIsaFeature), 0u);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

// ---- kUninitRead ----

TEST(Analyzer, ReadOfColdRegisterFlagged) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.add(r::a0, r::a1, r::a2);  // a1/a2 never written
    a.ecall();
  });
  EXPECT_GE(rep.count(DiagKind::kUninitRead), 1u);
}

TEST(Analyzer, UninitOnOnePathOnlyStillFlagged) {
  // a1 is written on the taken path but not on the fall-through: the
  // must-init join has to catch the uninitialized path.
  const auto rep = analyze([](xasm::Assembler& a) {
    const auto skip = a.new_label();
    a.li(r::a0, 1);
    a.beq(r::a0, r::zero, skip);
    a.li(r::a1, 7);
    a.bind(skip);
    a.add(r::a2, r::a1, r::a0);
    a.ecall();
  });
  EXPECT_GE(rep.count(DiagKind::kUninitRead), 1u);
}

TEST(Analyzer, InitializedReadsClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a1, 1);
    a.li(r::a2, 2);
    a.add(r::a0, r::a1, r::a2);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kUninitRead), 0u);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

TEST(Analyzer, AbiEntryMaskSuppressesArgumentReads) {
  AnalyzerOptions opt;
  opt.assume_initialized = AnalyzerOptions::abi_entry_mask();
  const auto rep = analyze(
      [](xasm::Assembler& a) {
        a.add(r::a0, r::a1, r::a2);  // arguments under the calling convention
        a.ecall();
      },
      opt);
  EXPECT_EQ(rep.count(DiagKind::kUninitRead), 0u);
}

// ---- kTcdmOutOfBounds ----

TEST(Analyzer, KnownAddressPastTcdmFlagged) {
  AnalyzerOptions opt;
  opt.mem_size = 0x10000;
  const auto rep = analyze(
      [](xasm::Assembler& a) {
        a.li(r::a0, 0x20000);
        a.lw(r::a1, r::a0, 0);
        a.ecall();
      },
      opt);
  EXPECT_GE(rep.count(DiagKind::kTcdmOutOfBounds), 1u);
}

TEST(Analyzer, InBoundsAccessClean) {
  AnalyzerOptions opt;
  opt.mem_size = 0x10000;
  const auto rep = analyze(
      [](xasm::Assembler& a) {
        a.li(r::a0, 0x8000);
        a.lw(r::a1, r::a0, 0);
        a.ecall();
      },
      opt);
  EXPECT_EQ(rep.count(DiagKind::kTcdmOutOfBounds), 0u);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

// ---- kMisalignedStraddle ----

TEST(Analyzer, StraddlingTcdmEndFlaggedAsStraddle) {
  // lw at mem_size - 2: first split transaction in bounds, second past
  // the end — its own kind, distinct from a fully out-of-range address.
  AnalyzerOptions opt;
  opt.mem_size = 0x10000;
  const auto rep = analyze(
      [](xasm::Assembler& a) {
        a.li(r::a0, 0xfffe);
        a.lw(r::a1, r::a0, 0);
        a.ecall();
      },
      opt);
  EXPECT_GE(rep.count(DiagKind::kMisalignedStraddle), 1u);
  EXPECT_EQ(rep.count(DiagKind::kTcdmOutOfBounds), 0u);
  EXPECT_TRUE(rep.has_errors());
}

TEST(Analyzer, FullyOutOfRangeIsNotAStraddle) {
  AnalyzerOptions opt;
  opt.mem_size = 0x10000;
  const auto rep = analyze(
      [](xasm::Assembler& a) {
        a.li(r::a0, 0x10000);
        a.sw(r::a0, r::a0, 0);
        a.ecall();
      },
      opt);
  EXPECT_EQ(rep.count(DiagKind::kMisalignedStraddle), 0u);
  EXPECT_GE(rep.count(DiagKind::kTcdmOutOfBounds), 1u);
}

TEST(Analyzer, LastAlignedWordIsNoStraddle) {
  AnalyzerOptions opt;
  opt.mem_size = 0x10000;
  const auto rep = analyze(
      [](xasm::Assembler& a) {
        a.li(r::a0, 0xfffc);
        a.lw(r::a1, r::a0, 0);
        a.ecall();
      },
      opt);
  EXPECT_EQ(rep.count(DiagKind::kMisalignedStraddle), 0u);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

// ---- kMisalignedAccess ----

TEST(Analyzer, MisalignedWordAccessWarned) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 0x1002);
    a.lw(r::a1, r::a0, 0);
    a.ecall();
  });
  EXPECT_GE(rep.count(DiagKind::kMisalignedAccess), 1u);
  // Misalignment is legal on this core (one stall per access): a warning,
  // not an error.
  EXPECT_FALSE(rep.has_errors()) << rep.to_string();
}

TEST(Analyzer, AlignedWordAccessClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 0x1004);
    a.lw(r::a1, r::a0, 0);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kMisalignedAccess), 0u);
}

// ---- kHwloopBodyTooShort ----

TEST(Analyzer, OneInstructionLoopBodyFlagged) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    const auto end = a.new_label();
    a.lp_setupi(0, 3, end);
    a.addi(r::a0, r::a0, 1);
    a.bind(end);
    a.ecall();
  });
  EXPECT_GE(rep.count(DiagKind::kHwloopBodyTooShort), 1u);
}

TEST(Analyzer, TwoInstructionLoopBodyClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    const auto end = a.new_label();
    a.lp_setupi(0, 3, end);
    a.addi(r::a0, r::a0, 1);
    a.addi(r::a0, r::a0, 1);
    a.bind(end);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kHwloopBodyTooShort), 0u);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

// ---- kHwloopBranchInBody ----

TEST(Analyzer, BranchLeavingLoopBodyFlagged) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 3);
    const auto end = a.new_label();
    const auto out = a.new_label();
    a.lp_setupi(0, 3, end);
    a.beq(r::a0, r::zero, out);  // escapes the hardware loop
    a.addi(r::a0, r::a0, -1);
    a.bind(end);
    a.bind(out);
    a.ecall();
  });
  EXPECT_GE(rep.count(DiagKind::kHwloopBranchInBody), 1u);
}

TEST(Analyzer, JumpIntoLoopBodyFlagged) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 3);
    const auto mid = a.new_label();
    const auto end = a.new_label();
    a.j(mid);  // enters the body past its first instruction
    a.lp_setupi(0, 3, end);
    a.addi(r::a0, r::a0, 1);
    a.bind(mid);
    a.addi(r::a0, r::a0, 1);
    a.bind(end);
    a.ecall();
  });
  EXPECT_GE(rep.count(DiagKind::kHwloopBranchInBody), 1u);
}

TEST(Analyzer, InBodyBranchStayingInsideClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 3);
    const auto end = a.new_label();
    a.lp_setupi(0, 3, end);
    const auto top = a.here();
    a.beq(r::a0, r::zero, top);  // stays within [start, end)
    a.addi(r::a0, r::a0, -1);
    a.bind(end);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kHwloopBranchInBody), 0u);
}

// ---- kHwloopEndsInControlFlow ----

TEST(Analyzer, LoopEndingInBranchFlagged) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 3);
    const auto end = a.new_label();
    a.lp_setupi(0, 3, end);
    const auto top = a.here();
    a.addi(r::a0, r::a0, -1);
    a.beq(r::a0, r::zero, top);  // last body instruction is control flow
    a.bind(end);
    a.ecall();
  });
  EXPECT_GE(rep.count(DiagKind::kHwloopEndsInControlFlow), 1u);
}

TEST(Analyzer, LoopEndingInFallThroughClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 3);
    const auto end = a.new_label();
    a.lp_setupi(0, 3, end);
    a.addi(r::a0, r::a0, -1);
    a.addi(r::a0, r::a0, 1);
    a.bind(end);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kHwloopEndsInControlFlow), 0u);
}

// ---- kHwloopBadNesting ----

TEST(Analyzer, NestedLoopsSharingIndexFlagged) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    const auto outer = a.new_label();
    const auto inner = a.new_label();
    a.lp_setupi(0, 3, outer);  // both on L0
    a.lp_setupi(0, 3, inner);
    a.addi(r::a0, r::a0, 1);
    a.addi(r::a0, r::a0, 1);
    a.bind(inner);
    a.addi(r::a0, r::a0, 1);
    a.bind(outer);
    a.ecall();
  });
  EXPECT_GE(rep.count(DiagKind::kHwloopBadNesting), 1u);
}

TEST(Analyzer, InnerLoopNotOnL0Flagged) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    const auto outer = a.new_label();
    const auto inner = a.new_label();
    a.lp_setupi(0, 3, outer);  // L0 outside...
    a.lp_setupi(1, 3, inner);  // ...L1 inside: inverted on RI5CY
    a.addi(r::a0, r::a0, 1);
    a.addi(r::a0, r::a0, 1);
    a.bind(inner);
    a.addi(r::a0, r::a0, 1);
    a.bind(outer);
    a.ecall();
  });
  EXPECT_GE(rep.count(DiagKind::kHwloopBadNesting), 1u);
}

TEST(Analyzer, ProperlyNestedLoopsClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    const auto outer = a.new_label();
    const auto inner = a.new_label();
    a.lp_setupi(1, 3, outer);  // L1 outer, L0 inner
    a.lp_setupi(0, 3, inner);
    a.addi(r::a0, r::a0, 1);
    a.addi(r::a0, r::a0, 1);
    a.bind(inner);
    a.addi(r::a0, r::a0, 1);
    a.bind(outer);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kHwloopBadNesting), 0u);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

// ---- kHwloopSetupOrder ----

TEST(Analyzer, CountBeforeBoundsFlagged) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.lp_counti(0, 5);  // no lp.starti/lp.endi has set the bounds yet
    a.ecall();
  });
  EXPECT_GE(rep.count(DiagKind::kHwloopSetupOrder), 1u);
}

TEST(Analyzer, BoundsThenCountClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    const auto s = a.new_label();
    const auto e = a.new_label();
    a.lp_starti(0, s);
    a.lp_endi(0, e);
    a.lp_counti(0, 3);
    a.bind(s);
    a.addi(r::a0, r::a0, 1);
    a.addi(r::a0, r::a0, 1);
    a.bind(e);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kHwloopSetupOrder), 0u);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

// ---- kDotpAccumOverlap ----

TEST(Analyzer, AccumulatorReusedAsOperandWarned) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 1);
    a.li(r::a1, 2);
    a.pv_sdotsp(SimdFmt::kB, r::a0, r::a0, r::a1);  // rd == rs1
    a.ecall();
  });
  EXPECT_GE(rep.count(DiagKind::kDotpAccumOverlap), 1u);
  EXPECT_FALSE(rep.has_errors()) << rep.to_string();  // advisory only
}

TEST(Analyzer, DistinctAccumulatorClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 1);
    a.li(r::a1, 2);
    a.li(r::a2, 0);
    a.pv_sdotsp(SimdFmt::kB, r::a2, r::a0, r::a1);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kDotpAccumOverlap), 0u);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

// ---- kQntThresholdSetup ----

TEST(Analyzer, OddThresholdPointerFlagged) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a1, 0x1001);  // Eytzinger trees are arrays of i16
    a.li(r::a2, 5);
    a.pv_qnt(4, r::a0, r::a2, r::a1);
    a.ecall();
  });
  EXPECT_GE(rep.count(DiagKind::kQntThresholdSetup), 1u);
}

TEST(Analyzer, ThresholdTreesPastTcdmFlagged) {
  AnalyzerOptions opt;
  opt.mem_size = 0x1000;
  const auto rep = analyze(
      [](xasm::Assembler& a) {
        a.li(r::a1, 0xff0);  // both trees (2 * 32 B for 4-bit) overrun
        a.li(r::a2, 5);
        a.pv_qnt(4, r::a0, r::a2, r::a1);
        a.ecall();
      },
      opt);
  EXPECT_GE(rep.count(DiagKind::kQntThresholdSetup), 1u);
}

TEST(Analyzer, AlignedInBoundsThresholdsClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a1, 0x1000);
    a.li(r::a2, 5);
    a.pv_qnt(4, r::a0, r::a2, r::a1);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kQntThresholdSetup), 0u);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

// ---- kFallOffEnd ----

TEST(Analyzer, MissingTerminatorFlagged) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 1);  // no ecall: execution runs past the image
  });
  EXPECT_GE(rep.count(DiagKind::kFallOffEnd), 1u);
  EXPECT_TRUE(rep.has_errors());
}

TEST(Analyzer, TerminatedProgramClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 1);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kFallOffEnd), 0u);
}

// ---- kMixedMpcState ----

namespace {
void mixed_operands(xasm::Assembler& a) {
  a.li(r::a0, 0x01020304);
  a.li(r::a1, 0x00000012);
  a.li(r::a2, 0);
}
}  // namespace

TEST(Analyzer, MixedDotAfterCsrrwiIsClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    mixed_operands(a);
    a.csrrwi(r::zero, isa::kMpcCsr, 1);
    a.pv_mlsdotusp(r::a2, r::a0, r::a1);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kMixedMpcState), 0u) << rep.to_string();
}

TEST(Analyzer, MixedDotWithoutMpcWriteWarns) {
  const auto rep = analyze([](xasm::Assembler& a) {
    mixed_operands(a);
    a.pv_mlsdotusp(r::a2, r::a0, r::a1);  // relies on the reset selector
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kMixedMpcState), 1u);
  EXPECT_FALSE(rep.has_errors()) << rep.to_string();  // warning, not error
}

TEST(Analyzer, MixedDotReachableWithReservedSelectorErrors) {
  const auto rep = analyze([](xasm::Assembler& a) {
    mixed_operands(a);
    a.csrrwi(r::zero, isa::kMpcCsr, 3);  // WARL keeps 3: reserved
    a.pv_mldotup(r::a2, r::a0, r::a1);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kMixedMpcState), 1u);
  EXPECT_TRUE(rep.has_errors());
}

TEST(Analyzer, MixedDotAfterUnboundMpcWriteWarns) {
  AnalyzerOptions opt;
  opt.assume_initialized = AnalyzerOptions::abi_entry_mask();
  const auto rep = analyze(
      [](xasm::Assembler& a) {
        mixed_operands(a);
        a.csrrw(r::zero, isa::kMpcCsr, r::a3);  // a3: unknown runtime value
        a.pv_mlsdotsp(r::a2, r::a0, r::a1);
        a.ecall();
      },
      opt);
  EXPECT_EQ(rep.count(DiagKind::kMixedMpcState), 1u);
  EXPECT_FALSE(rep.has_errors()) << rep.to_string();
}

TEST(Analyzer, MixedDotKnownCsrrwFromRegisterIsClean) {
  const auto rep = analyze([](xasm::Assembler& a) {
    mixed_operands(a);
    a.li(r::t0, 2);
    a.csrrw(r::zero, isa::kMpcCsr, r::t0);
    a.pv_mldotsp(r::a2, r::a0, r::a1);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kMixedMpcState), 0u) << rep.to_string();
}

TEST(Analyzer, CsrrsMappedThroughPossibleOldValues) {
  // csrrs of selector bit 1 on top of an explicit selector 1 makes the
  // reserved value 3 reachable; the read-modify-write must be modeled,
  // not treated as a fresh write of 2.
  const auto rep = analyze([](xasm::Assembler& a) {
    mixed_operands(a);
    a.csrrwi(r::zero, isa::kMpcCsr, 1);
    a.li(r::t1, 2);
    a.csrrs(r::zero, isa::kMpcCsr, r::t1);  // 1 | 2 == 3
    a.pv_mldotusp(r::a2, r::a0, r::a1);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kMixedMpcState), 1u);
  EXPECT_TRUE(rep.has_errors());
}

TEST(Analyzer, MixedDotJoinOfWrittenAndDefaultPathsWarns) {
  // One branch arm sets the selector, the other falls through untouched:
  // the join still carries the reset-default state, so the dot warns.
  const auto rep = analyze([](xasm::Assembler& a) {
    mixed_operands(a);
    const auto join = a.new_label();
    a.beq(r::a2, r::zero, join);
    a.csrrwi(r::zero, isa::kMpcCsr, 2);
    a.bind(join);
    a.pv_mlsdotup(r::a2, r::a0, r::a1);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kMixedMpcState), 1u);
  EXPECT_FALSE(rep.has_errors()) << rep.to_string();
}

TEST(Analyzer, UniformDotsIgnoreMpcState) {
  // The rule is scoped to the CSR-dependent mixed family; uniform pv.sdot
  // encodes its width and never consults mpc.
  const auto rep = analyze([](xasm::Assembler& a) {
    mixed_operands(a);
    a.pv_sdotsp(SimdFmt::kB, r::a2, r::a0, r::a1);
    a.ecall();
  });
  EXPECT_EQ(rep.count(DiagKind::kMixedMpcState), 0u) << rep.to_string();
}

// ---- report plumbing ----

TEST(Analyzer, ReportCountsInstructionsAndLoops) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    const auto end = a.new_label();
    a.lp_setupi(0, 3, end);
    a.addi(r::a0, r::a0, 1);
    a.addi(r::a0, r::a0, 1);
    a.bind(end);
    a.ecall();
  });
  EXPECT_EQ(rep.hwloop_count, 1u);
  EXPECT_GE(rep.instr_count, 5u);
  EXPECT_EQ(rep.reachable_count, rep.instr_count);
}

TEST(Analyzer, DiagnosticsCarryKindNamesAndAddresses) {
  const auto rep = analyze([](xasm::Assembler& a) {
    a.add(r::a0, r::a1, r::a2);
    a.ecall();
  });
  ASSERT_FALSE(rep.diags.empty());
  const auto& d = rep.diags.front();
  EXPECT_EQ(d.kind, DiagKind::kUninitRead);
  EXPECT_NE(d.to_string().find(diag_kind_name(DiagKind::kUninitRead)),
            std::string::npos);
}

}  // namespace
}  // namespace xpulp::analysis
