// obs subsystem: RegionMap precedence and indexing, the metrics Registry's
// JSON/CSV exporters, and the cycle-attribution Profiler's reconciliation
// guarantee (attributed cycles partition the core's cycle counter).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "kernels/conv_layer.hpp"
#include "obs/profiler.hpp"
#include "obs/region.hpp"
#include "obs/registry.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::obs {
namespace {

namespace r = xasm::reg;
using kernels::ConvVariant;

// ---------------------------------------------------------------- RegionMap

TEST(RegionMap, LookupAndCreationOrderPrecedence) {
  RegionMap m;
  m.add_range("outer", 0x00, 0x40);
  m.add_range("inner", 0x10, 0x20);  // created later: wins on overlap

  EXPECT_EQ(m.size(), 2);
  EXPECT_EQ(m.name(0), "outer");
  EXPECT_EQ(m.lookup(0x00), 0);
  EXPECT_EQ(m.lookup(0x10), 1);
  EXPECT_EQ(m.lookup(0x1e), 1);
  EXPECT_EQ(m.lookup(0x20), 0);  // [lo, hi) is half-open
  EXPECT_EQ(m.lookup(0x3e), 0);
  EXPECT_EQ(m.lookup(0x40), RegionMap::kNone);
  EXPECT_EQ(m.end_addr(), 0x40u);
}

TEST(RegionMap, IndexMatchesLookupEverywhere) {
  RegionMap m;
  m.add_range("a", 0x04, 0x30);
  m.add_range("b", 0x10, 0x18);
  m.add_range("a", 0x40, 0x50);  // second disjoint range, same region
  const auto idx = m.build_index();
  ASSERT_EQ(idx.size(), (m.end_addr() + 1) >> 1);
  for (addr_t pc = 0; pc < m.end_addr(); pc += 2) {
    EXPECT_EQ(idx[pc >> 1], m.lookup(pc)) << "pc 0x" << std::hex << pc;
  }
}

TEST(RegionMap, EmptyAndDegenerateRanges) {
  RegionMap m;
  EXPECT_EQ(m.end_addr(), 0u);
  EXPECT_EQ(m.lookup(0), RegionMap::kNone);
  EXPECT_TRUE(m.build_index().empty());

  m.add_range("empty", 0x10, 0x10);  // hi <= lo: dropped entirely
  EXPECT_EQ(m.size(), 0);
  EXPECT_EQ(m.lookup(0x10), RegionMap::kNone);

  const int id = m.region("declared");  // region() does create, rangeless
  EXPECT_EQ(m.size(), 1);
  EXPECT_TRUE(m.ranges(id).empty());
}

// ----------------------------------------------------------------- Registry

TEST(Registry, JsonNestsAlongDots) {
  Registry reg;
  reg.counter("a.b.count", 3);
  reg.gauge("a.b.rate", 0.5);
  reg.text("a.name", "conv");
  reg.flag("ok", true);

  std::istringstream is(reg.json());
  std::string json = reg.json();
  EXPECT_NE(json.find("\"a\": {"), std::string::npos);
  EXPECT_NE(json.find("\"b\": {"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"rate\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"conv\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

TEST(Registry, OverwriteAndContains) {
  Registry reg;
  reg.counter("x", 1);
  reg.counter("x", 2);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.contains("x"));
  EXPECT_FALSE(reg.contains("y"));
  EXPECT_NE(reg.json().find("\"x\": 2"), std::string::npos);
}

TEST(Registry, CsvQuotesStrings) {
  Registry reg;
  reg.text("name", "say \"hi\"");
  reg.counter("n", 7);
  const std::string csv = reg.csv();
  EXPECT_NE(csv.find("metric,value"), std::string::npos);
  EXPECT_NE(csv.find("name,\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("n,7"), std::string::npos);
}

TEST(Registry, LeafObjectConflictThrows) {
  Registry reg;
  reg.counter("a.b", 1);
  reg.counter("a.b.c", 2);  // "a.b" is both a leaf and an object
  EXPECT_THROW(reg.json(), SimError);
}

TEST(Registry, EmptyRegistryStillExports) {
  Registry reg;
  EXPECT_EQ(reg.size(), 0u);
  const std::string json = reg.json();
  // Even an empty registry carries the schema version.
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  const std::string csv = reg.csv();
  EXPECT_EQ(csv, "metric,value\n");  // header only
}

TEST(Registry, SchemaVersionInjectedOnceAndNotDuplicated) {
  Registry reg;
  reg.counter("x", 1);
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  // First key in the object, so parsers can sniff it cheaply.
  EXPECT_LT(json.find("schema_version"), json.find("\"x\""));

  // A metric that claims the path wins; no duplicate key is emitted.
  Registry reg2;
  reg2.counter("schema_version", 42);
  const std::string json2 = reg2.json();
  EXPECT_NE(json2.find("\"schema_version\": 42"), std::string::npos);
  EXPECT_EQ(json2.find("\"schema_version\": 1"), std::string::npos);
}

TEST(Registry, CsvQuotesPathsWithCommasQuotesAndNewlines) {
  Registry reg;
  reg.counter("a,b", 1);        // comma in the path
  reg.counter("with\"quote", 2);
  reg.counter("multi\nline", 3);
  reg.text("plain", "v");
  const std::string csv = reg.csv();
  EXPECT_NE(csv.find("\"a,b\",1"), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\",2"), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\",3"), std::string::npos);
  EXPECT_NE(csv.find("plain,v"), std::string::npos);
  // The unquoted rows still have exactly two columns.
  EXPECT_EQ(csv.find("plain,\"v\""), std::string::npos);
}

TEST(Registry, NonFiniteDoublesSerializeAsQuotedStrings) {
  Registry reg;
  reg.gauge("nan", std::nan(""));
  reg.gauge("pinf", std::numeric_limits<double>::infinity());
  reg.gauge("ninf", -std::numeric_limits<double>::infinity());
  reg.gauge("fine", 1.5);
  const std::string json = reg.json();
  // JSON has no literals for these; they must not leak as bare tokens.
  EXPECT_NE(json.find("\"nan\": \"NaN\""), std::string::npos);
  EXPECT_NE(json.find("\"pinf\": \"Infinity\""), std::string::npos);
  EXPECT_NE(json.find("\"ninf\": \"-Infinity\""), std::string::npos);
  EXPECT_EQ(json.find("inf,"), std::string::npos);
  EXPECT_EQ(json.find(": nan"), std::string::npos);

  const std::string csv = reg.csv();
  EXPECT_NE(csv.find("nan,NaN"), std::string::npos);
  EXPECT_NE(csv.find("pinf,Infinity"), std::string::npos);
  EXPECT_NE(csv.find("ninf,-Infinity"), std::string::npos);
}

// ----------------------------------------------------------------- Profiler

TEST(Profiler, AttributesHandWrittenRegions) {
  mem::Memory mem(64 * 1024);
  xasm::Assembler a(0);
  RegionMap regions;

  const addr_t warm_lo = a.current_addr();
  a.li(r::a0, 100);
  a.li(r::a1, 0);
  regions.add_range("warm", warm_lo, a.current_addr());

  const addr_t loop_lo = a.current_addr();
  const auto loop_top = a.here();
  a.addi(r::a1, r::a1, 1);
  a.addi(r::a0, r::a0, -1);
  a.bne(r::a0, r::zero, loop_top);
  regions.add_range("loop", loop_lo, a.current_addr());

  a.ecall();  // outside every region: lands in "other"
  auto prog = a.finish();
  prog.load(mem);

  sim::Core core(mem);
  core.reset(0);
  Profiler prof(core, regions);
  core.run();
  prof.finalize();

  const auto& perf = core.perf();
  EXPECT_EQ(prof.total().cycles, perf.cycles);
  EXPECT_EQ(prof.total().instructions, perf.instructions);

  const auto stats = prof.region_stats();
  ASSERT_EQ(stats.size(), 3u);  // warm, loop, other
  EXPECT_EQ(stats[0].name, "warm");
  EXPECT_EQ(stats[1].name, "loop");
  EXPECT_EQ(stats[2].name, "other");
  EXPECT_EQ(stats[0].stat.instructions, 2u);
  EXPECT_EQ(stats[1].stat.instructions, 300u);  // 3 instrs x 100 iterations
  EXPECT_EQ(stats[2].stat.instructions, 1u);    // the ecall
  // The loop's taken branches carry all the branch stall cycles.
  EXPECT_EQ(stats[1].stat.stalls.branch, perf.branch_stall_cycles);

  u64 sum = 0;
  for (const auto& s : stats) sum += s.stat.cycles;
  EXPECT_EQ(sum, perf.cycles);
}

TEST(Profiler, ReconcilesOnConvKernelBothDispatchPaths) {
  qnn::ConvSpec s;
  s.in_h = s.in_w = 6;
  s.in_c = 16;
  s.out_c = 8;
  s.in_bits = s.w_bits = s.out_bits = 4;
  const auto data = kernels::ConvLayerData::random(s, 7);

  for (const bool reference : {false, true}) {
    auto cfg = sim::CoreConfig::extended();
    cfg.reference_dispatch = reference;
    kernels::ConvKernel kernel =
        kernels::generate_conv_kernel(s, ConvVariant::kXpulpNN_HwQ, 0x40000);

    mem::Memory mem;
    kernel.program.load(mem);
    kernels::load_conv_data(data, kernel.layout, mem);
    sim::Core core(mem, cfg);
    core.reset(kernel.program.entry(),
               kernel.program.base() + kernel.program.size_bytes());

    Profiler prof(core, kernel.regions);
    ASSERT_EQ(core.run(), sim::HaltReason::kEcall);
    prof.finalize();

    EXPECT_EQ(prof.total().cycles, core.perf().cycles);
    u64 sum = 0, quant = 0;
    for (const auto& rs : prof.region_stats()) {
      sum += rs.stat.cycles;
      if (rs.name == "quant") quant = rs.stat.cycles;
    }
    EXPECT_EQ(sum, core.perf().cycles);

    // Cross-check against run_conv_layer's quant attribution (which uses
    // its own Profiler internally): the same workload must agree.
    const auto res = kernels::run_conv_layer(data, ConvVariant::kXpulpNN_HwQ,
                                             cfg);
    EXPECT_EQ(quant, res.quant_cycles);
    EXPECT_GT(quant, 0u);
  }
}

TEST(Profiler, MnemonicAndHotspotTablesPartitionCycles) {
  qnn::ConvSpec s;
  s.in_h = s.in_w = 4;
  s.in_c = 8;
  s.out_c = 4;
  s.in_bits = s.w_bits = s.out_bits = 4;
  const auto data = kernels::ConvLayerData::random(s, 7);
  kernels::ConvKernel kernel =
      kernels::generate_conv_kernel(s, ConvVariant::kXpulpNN_HwQ, 0x40000);

  mem::Memory mem;
  kernel.program.load(mem);
  kernels::load_conv_data(data, kernel.layout, mem);
  sim::Core core(mem);
  core.reset(kernel.program.entry(),
             kernel.program.base() + kernel.program.size_bytes());
  Profiler prof(core, kernel.regions);
  ASSERT_EQ(core.run(), sim::HaltReason::kEcall);
  prof.finalize();

  u64 by_op = 0;
  for (const auto& st : prof.by_mnemonic()) by_op += st.cycles;
  EXPECT_EQ(by_op, prof.total().cycles);

  u64 by_cls = 0;
  for (const auto& st : prof.by_class()) by_cls += st.cycles;
  EXPECT_EQ(by_cls, prof.total().cycles);

  // Every pc's cycles sum to the total too (hotspots with a huge n returns
  // every tracked pc).
  const auto spots = prof.hotspots(1u << 20);
  u64 by_pc = 0;
  for (const auto& h : spots) by_pc += h.stat.cycles;
  EXPECT_EQ(by_pc, prof.total().cycles);
  // Descending order.
  for (size_t i = 1; i < spots.size(); ++i) {
    EXPECT_GE(spots[i - 1].stat.cycles, spots[i].stat.cycles);
  }
}

TEST(Profiler, CollapsedStacksSumToTotal) {
  mem::Memory mem(64 * 1024);
  xasm::Assembler a(0);
  RegionMap regions;
  const addr_t lo = a.current_addr();
  for (int i = 0; i < 8; ++i) a.addi(r::a0, r::a0, 1);
  regions.add_range("body", lo, a.current_addr());
  a.ecall();
  auto prog = a.finish();
  prog.load(mem);

  sim::Core core(mem);
  core.reset(0);
  Profiler prof(core, regions);
  core.run();
  prof.finalize();

  const std::string folded = prof.collapsed_stacks("core0");
  u64 sum = 0;
  std::istringstream is(folded);
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_EQ(line.rfind("core0;", 0), 0u) << line;
    sum += std::stoull(line.substr(line.rfind(' ') + 1));
  }
  EXPECT_EQ(sum, prof.total().cycles);
  EXPECT_NE(folded.find("core0;body;addi "), std::string::npos);
}

TEST(Profiler, AddToRegistryPublishesRegions) {
  mem::Memory mem(64 * 1024);
  xasm::Assembler a(0);
  RegionMap regions;
  const addr_t lo = a.current_addr();
  a.li(r::a0, 1);
  regions.add_range("init", lo, a.current_addr());
  a.ecall();
  auto prog = a.finish();
  prog.load(mem);

  sim::Core core(mem);
  core.reset(0);
  Profiler prof(core, regions);
  core.run();
  prof.finalize();

  Registry reg;
  prof.add_to_registry(reg, "profile");
  EXPECT_TRUE(reg.contains("profile.total.cycles"));
  EXPECT_TRUE(reg.contains("profile.total.stall_cycles.qnt"));
  EXPECT_TRUE(reg.contains("profile.regions.init.cycles"));
  EXPECT_TRUE(reg.contains("profile.regions.other.cycles"));
}

TEST(Profiler, TrackPcOffDisablesHotspots) {
  mem::Memory mem(64 * 1024);
  xasm::Assembler a(0);
  a.li(r::a0, 1);
  a.ecall();
  auto prog = a.finish();
  prog.load(mem);

  sim::Core core(mem);
  core.reset(0);
  Profiler::Options o;
  o.track_pc = false;
  RegionMap none;
  Profiler prof(core, none, o);
  core.run();
  prof.finalize();
  EXPECT_TRUE(prof.hotspots(10).empty());
  EXPECT_EQ(prof.total().cycles, core.perf().cycles);
}

}  // namespace
}  // namespace xpulp::obs
