// Sequential network runner: multi-layer on-device execution with
// per-layer golden checks, across bitwidths, variants, and cores.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernels/network.hpp"

namespace xpulp::kernels {
namespace {

qnn::Tensor random_input(qnn::Shape s, unsigned bits, u64 seed) {
  Rng rng(seed);
  qnn::Tensor t(s);
  for (int i = 0; i < t.elems(); ++i) {
    t.flat(i) = static_cast<i32>(rng.unsigned_bits(bits));
  }
  return t;
}

TEST(Network, ShapePropagation) {
  Network net({16, 16, 8}, 4, 1);
  net.conv(16).maxpool().conv(32).maxpool().linear(10);
  EXPECT_EQ(net.output_shape(), (qnn::Shape{1, 1, 10}));
  EXPECT_EQ(net.layer_count(), 5);
}

class NetworkBits : public ::testing::TestWithParam<unsigned> {};

TEST_P(NetworkBits, FiveLayerStackBitExact) {
  const unsigned bits = GetParam();
  Network net({8, 8, 16}, bits, 42);
  net.conv(16).maxpool().conv(32).maxpool().linear(12);
  const auto in = random_input({8, 8, 16}, bits, 7);
  const ConvVariant v =
      (bits == 8) ? ConvVariant::kXpulpV2_8b : ConvVariant::kXpulpNN_HwQ;
  const auto res = net.run(in, sim::CoreConfig::extended(), v);
  EXPECT_TRUE(res.all_matched);
  ASSERT_EQ(res.layers.size(), 5u);
  for (const auto& l : res.layers) {
    EXPECT_TRUE(l.matched_golden) << l.name;
    EXPECT_GT(l.cycles, 0u);
  }
  EXPECT_EQ(res.output.shape(), (qnn::Shape{1, 1, 12}));
  EXPECT_EQ(res.total_macs,
            static_cast<u64>(8 * 8 * 16 * 9 * 16) +        // conv0
                static_cast<u64>(4 * 4 * 32 * 9 * 16) +    // conv2
                static_cast<u64>(2 * 2 * 32 * 12));        // linear
}

INSTANTIATE_TEST_SUITE_P(Widths, NetworkBits, ::testing::Values(8u, 4u, 2u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "b" + std::to_string(info.param);
                         });

TEST(Network, AvgPoolVariant) {
  Network net({4, 4, 16}, 4, 3);
  net.avgpool().conv(8, 1, 0);
  const auto in = random_input({4, 4, 16}, 4, 9);
  const auto res = net.run(in, sim::CoreConfig::extended());
  EXPECT_TRUE(res.all_matched);
  EXPECT_EQ(res.output.shape(), (qnn::Shape{2, 2, 8}));
}

TEST(Network, RunsOnBaselineWithSubByteVariant) {
  Network net({6, 6, 16}, 4, 5);
  net.conv(8);
  const auto in = random_input({6, 6, 16}, 4, 5);
  const auto res =
      net.run(in, sim::CoreConfig::ri5cy(), ConvVariant::kXpulpV2_Sub);
  EXPECT_TRUE(res.all_matched);
}

TEST(Network, SameNetworkFasterOnExtendedCore) {
  Network net({8, 8, 16}, 2, 11);
  net.conv(16).maxpool().conv(16);
  const auto in = random_input({8, 8, 16}, 2, 11);
  const auto ext = net.run(in, sim::CoreConfig::extended(),
                           ConvVariant::kXpulpNN_HwQ);
  const auto base = net.run(in, sim::CoreConfig::ri5cy(),
                            ConvVariant::kXpulpV2_Sub);
  EXPECT_TRUE(ext.all_matched);
  EXPECT_TRUE(base.all_matched);
  // Outputs agree across ISAs...
  EXPECT_EQ(ext.output, base.output);
  // ...and the extension pays off end to end, not just per layer.
  EXPECT_GT(static_cast<double>(base.total_cycles),
            4.0 * static_cast<double>(ext.total_cycles));
}

TEST(Network, DeterministicAcrossRuns) {
  Network net({6, 6, 16}, 4, 21);
  net.conv(8).maxpool();
  const auto in = random_input({6, 6, 16}, 4, 2);
  const auto a = net.run(in, sim::CoreConfig::extended());
  const auto b = net.run(in, sim::CoreConfig::extended());
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

TEST(Network, RejectsBadBits) {
  EXPECT_THROW(Network({4, 4, 8}, 3, 1), SimError);
}

// ---- per-layer mixed precision ----

TEST(Network, MixedPrecisionStackBitExact) {
  // 8-bit activations with 4- and 2-bit weights throughout: every conv and
  // linear layer dispatches to the virtual-SIMD mixed kernel.
  Network net({8, 8, 8}, 8, 31);
  net.conv(16, 3, 1, {/*w_bits=*/4, /*out_bits=*/8})
      .maxpool()
      .conv(8, 3, 1, {/*w_bits=*/2, /*out_bits=*/8})
      .linear(12, {/*w_bits=*/4, /*out_bits=*/8});
  EXPECT_EQ(net.activation_bits(), 8u);
  const auto in = random_input({8, 8, 8}, 8, 13);
  const auto res = net.run(in, sim::CoreConfig::extended());
  EXPECT_TRUE(res.all_matched);
  ASSERT_EQ(res.layers.size(), 4u);
  for (const auto& l : res.layers) {
    EXPECT_TRUE(l.matched_golden) << l.name;
  }
  EXPECT_EQ(res.output.shape(), (qnn::Shape{1, 1, 12}));
}

TEST(Network, MixedSubByteOutputLayer) {
  // 4-bit activations x 2-bit weights with a 4-bit staircase output: the
  // whole mpc pair grid including a sub-byte requantization path.
  Network net({6, 6, 8}, 4, 33);
  net.conv(8, 3, 1, {/*w_bits=*/2, /*out_bits=*/4})
      .conv(8, 3, 1, {/*w_bits=*/2, /*out_bits=*/4});
  const auto in = random_input({6, 6, 8}, 4, 17);
  const auto res = net.run(in, sim::CoreConfig::extended());
  EXPECT_TRUE(res.all_matched);
  for (const auto& l : res.layers) {
    EXPECT_TRUE(l.matched_golden) << l.name;
  }
}

TEST(Network, PrecisionFlowsToFollowingLayers) {
  // A layer that narrows its outputs changes the input width (and hence
  // the legal weight widths) of everything after it.
  Network net({8, 8, 8}, 8, 35);
  net.conv(8, 3, 1, {/*w_bits=*/4, /*out_bits=*/4});
  EXPECT_EQ(net.activation_bits(), 4u);  // mixed_sel_for(8,4), out 4
  net.conv(8, 3, 1, {/*w_bits=*/2, /*out_bits=*/4});  // 4x2 pair: legal
  EXPECT_EQ(net.activation_bits(), 4u);
  // 4-bit activations x 8-bit weights is not an mpc pair.
  EXPECT_THROW(net.linear(10, {/*w_bits=*/8, /*out_bits=*/8}), SimError);
}

}  // namespace
}  // namespace xpulp::kernels
