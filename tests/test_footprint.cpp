// Footprint analyzer unit tests: the strided-interval lattice, loop
// summarization (hardware loops and counted branch loops), post-loop
// exit-state exactness, and the overlap predicate race.cpp builds on.
#include <gtest/gtest.h>

#include <functional>

#include "analysis/footprint.hpp"
#include "analysis/race.hpp"
#include "kernels/conv_layer.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::analysis {
namespace {

namespace r = xasm::reg;

Footprint run(const std::function<void(xasm::Assembler&)>& body) {
  xasm::Assembler a(0);
  body(a);
  return FootprintAnalyzer().analyze(a.finish());
}

const StridedAccess* find_access(const Footprint& fp, bool is_store,
                                 unsigned size) {
  for (const StridedAccess& acc : fp.accesses) {
    if (acc.is_store == is_store && acc.size == size) return &acc;
  }
  return nullptr;
}

StridedAccess acc(bool is_store, unsigned size, AVal a) {
  StridedAccess s;
  s.is_store = is_store;
  s.size = size;
  s.addr = a;
  return s;
}

// ---- AVal lattice ----

TEST(AVal, RangeNormalizesToConst) {
  EXPECT_EQ(AVal::range(8, 8, 4), AVal::constant(8));
  // hi snaps down onto the progression.
  const AVal v = AVal::range(0, 10, 4);
  EXPECT_EQ(v.hi, 8u);
  EXPECT_EQ(v.count(), 3u);
}

TEST(AVal, JoinOfConstsMakesStride) {
  const AVal j = aval_join(AVal::constant(0x100), AVal::constant(0x118));
  EXPECT_EQ(j.kind, AVal::kRange);
  EXPECT_EQ(j.lo, 0x100u);
  EXPECT_EQ(j.hi, 0x118u);
  EXPECT_EQ(j.stride, 0x18u);
}

TEST(AVal, AddTreatsConstAsSignedDisplacement) {
  // range + (-4): the interval shifts down instead of smearing to Top.
  const AVal v = aval_add(AVal::range(0x100, 0x120, 8),
                          AVal::constant(static_cast<u32>(-4)));
  EXPECT_EQ(v, AVal::range(0xfc, 0x11c, 8));
}

TEST(AVal, ShlScalesLoHiStride) {
  EXPECT_EQ(aval_shl(AVal::range(1, 5, 2), 2), AVal::range(4, 20, 8));
}

// ---- hardware-loop summarization ----

TEST(Footprint, HwLoopPostIncrementIsExactStride) {
  const Footprint fp = run([](xasm::Assembler& a) {
    a.li(r::a0, 0x1000);
    const auto end = a.new_label();
    a.lp_setupi(0, 8, end);
    a.p_lw_post(r::a1, r::a0, 4);
    a.addi(r::zero, r::zero, 0);
    a.bind(end);
    a.ecall();
  });
  EXPECT_EQ(fp.loop_count, 1u);
  EXPECT_EQ(fp.unsummarized, 0u);
  const StridedAccess* ld = find_access(fp, /*is_store=*/false, 4);
  ASSERT_NE(ld, nullptr);
  EXPECT_EQ(ld->addr, AVal::range(0x1000, 0x1000 + 7 * 4, 4))
      << ld->addr.to_string();
}

TEST(Footprint, PostLoopPointerIsExactConstant) {
  // After 8 iterations of a += 4 the exit state must be the exact final
  // value, so the post-loop store footprint is a single word.
  const Footprint fp = run([](xasm::Assembler& a) {
    a.li(r::a0, 0x1000);
    a.li(r::a2, 7);
    const auto end = a.new_label();
    a.lp_setupi(0, 8, end);
    a.p_lw_post(r::a1, r::a0, 4);
    a.addi(r::zero, r::zero, 0);
    a.bind(end);
    a.sw(r::a2, r::a0, 0);
    a.ecall();
  });
  const StridedAccess* st = find_access(fp, /*is_store=*/true, 4);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->addr, AVal::constant(0x1000 + 8 * 4)) << st->addr.to_string();
}

TEST(Footprint, NestedHwLoopsCompose) {
  // Outer loop strides rows (16 bytes), inner strides words: the inner
  // load footprint is the full dense 4x4 word block.
  const Footprint fp = run([](xasm::Assembler& a) {
    a.li(r::a0, 0x2000);
    const auto oend = a.new_label();
    const auto iend = a.new_label();
    a.lp_setupi(1, 4, oend);
    a.lp_setupi(0, 4, iend);
    a.p_lw_post(r::a1, r::a0, 4);
    a.addi(r::zero, r::zero, 0);
    a.bind(iend);
    a.addi(r::zero, r::zero, 0);
    a.bind(oend);
    a.ecall();
  });
  EXPECT_EQ(fp.loop_count, 2u);
  EXPECT_EQ(fp.unsummarized, 0u);
  const StridedAccess* ld = find_access(fp, /*is_store=*/false, 4);
  ASSERT_NE(ld, nullptr);
  EXPECT_EQ(ld->addr, AVal::range(0x2000, 0x2000 + 15 * 4, 4))
      << ld->addr.to_string();
}

// ---- counted branch-loop summarization ----

TEST(Footprint, CountedBranchLoopIsExact) {
  const Footprint fp = run([](xasm::Assembler& a) {
    a.li(r::a0, 0x3000);
    a.li(r::a2, 6);  // counter
    const auto head = a.here();
    a.p_sw_post(r::zero, r::a0, 8);
    a.addi(r::a2, r::a2, -1);
    a.bne(r::a2, r::zero, head);
    a.ecall();
  });
  EXPECT_EQ(fp.loop_count, 1u);
  EXPECT_EQ(fp.unsummarized, 0u);
  const StridedAccess* st = find_access(fp, /*is_store=*/true, 4);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->addr, AVal::range(0x3000, 0x3000 + 5 * 8, 8))
      << st->addr.to_string();
}

TEST(Footprint, UnboundedAddressIsUnprovableNotWrong) {
  // A pointer loaded from memory is Top; the analyzer must refuse to
  // bound that access, not guess.
  const Footprint fp = run([](xasm::Assembler& a) {
    a.li(r::a0, 0x1000);
    a.lw(r::a1, r::a0, 0);
    a.sw(r::a0, r::a1, 0);  // store through unknown pointer
    a.ecall();
  });
  EXPECT_EQ(fp.unprovable(), 1u);
}

// ---- generated kernels: the acceptance property ----

TEST(Footprint, GeneratedConvKernelFullyProvable) {
  qnn::ConvSpec s;
  s.in_h = s.in_w = 6;
  s.in_c = 16;
  s.out_c = 8;
  s.in_bits = s.w_bits = s.out_bits = 4;
  const auto k = kernels::generate_conv_kernel(
      s, kernels::ConvVariant::kXpulpNN_HwQ, 0x40000);
  const Footprint fp = FootprintAnalyzer().analyze(k.program);
  EXPECT_EQ(fp.unprovable(), 0u);
  EXPECT_EQ(fp.unsummarized, 0u);
  EXPECT_GT(fp.loop_count, 0u);
  EXPECT_GT(fp.writes(), 0u);
}

// ---- overlap predicate ----

TEST(Overlap, DenseDense) {
  AddrRange ov{};
  EXPECT_TRUE(accesses_overlap(acc(true, 4, AVal::constant(0x100)),
                               acc(false, 4, AVal::constant(0x102)), &ov));
  EXPECT_EQ(ov.begin, 0x102u);
  EXPECT_EQ(ov.end, 0x104u);
  EXPECT_FALSE(accesses_overlap(acc(true, 4, AVal::constant(0x100)),
                                acc(false, 4, AVal::constant(0x104)), &ov));
}

TEST(Overlap, DenseVsStridedIsExact) {
  // Stride-8 byte stores at 0x100, 0x108, ...; a word at 0x104 falls in
  // a gap and must NOT count as overlap.
  const StridedAccess sparse = acc(true, 1, AVal::range(0x100, 0x140, 8));
  EXPECT_FALSE(
      accesses_overlap(sparse, acc(false, 4, AVal::constant(0x104)), nullptr));
  EXPECT_TRUE(
      accesses_overlap(sparse, acc(false, 4, AVal::constant(0x106)), nullptr));
}

TEST(Overlap, InterleavedStridesDisjoint) {
  // Two word streams, stride 8, offset by 4: perfectly interleaved,
  // never colliding — the gcd-phase test must prove it.
  EXPECT_FALSE(accesses_overlap(acc(true, 4, AVal::range(0x100, 0x180, 8)),
                                acc(true, 4, AVal::range(0x104, 0x184, 8)),
                                nullptr));
  // Same phase: every element collides.
  EXPECT_TRUE(accesses_overlap(acc(true, 4, AVal::range(0x100, 0x180, 8)),
                               acc(true, 4, AVal::range(0x100, 0x184, 8)),
                               nullptr));
}

TEST(Overlap, BoundingPrefilterRejectsDistantRanges) {
  EXPECT_FALSE(accesses_overlap(acc(true, 4, AVal::range(0x100, 0x180, 8)),
                                acc(true, 4, AVal::range(0x200, 0x280, 8)),
                                nullptr));
}

}  // namespace
}  // namespace xpulp::analysis
