// End-to-end kernel integration: every variant on every legal core and
// bitwidth must reproduce the golden layer bit-exactly, across layer
// geometries (padding patterns, channel counts, pointwise convs).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "kernels/conv_layer.hpp"

namespace xpulp::kernels {
namespace {

using qnn::ConvSpec;

struct Case {
  ConvSpec spec;
  ConvVariant variant;
  bool extended_core;
  const char* name;
};

ConvSpec spec(unsigned bits, int h, int w, int cin, int cout, int k = 3,
              int pad = 1, int stride = 1) {
  ConvSpec s;
  s.in_h = h;
  s.in_w = w;
  s.in_c = cin;
  s.out_c = cout;
  s.k_h = s.k_w = k;
  s.pad = pad;
  s.stride = stride;
  s.in_bits = s.w_bits = s.out_bits = bits;
  return s;
}

std::vector<Case> cases() {
  std::vector<Case> v;
  // 8-bit on both cores.
  v.push_back({spec(8, 6, 6, 8, 4), ConvVariant::kXpulpV2_8b, true, "v8_ext"});
  v.push_back({spec(8, 6, 6, 8, 4), ConvVariant::kXpulpV2_8b, false, "v8_base"});
  v.push_back({spec(8, 4, 4, 4, 2), ConvVariant::kXpulpV2_8b, true, "v8_tiny"});
  // 4-bit, all three kernel flavours.
  v.push_back({spec(4, 6, 6, 16, 8), ConvVariant::kXpulpNN_HwQ, true, "n4_hw"});
  v.push_back({spec(4, 6, 6, 16, 8), ConvVariant::kXpulpNN_SwQ, true, "n4_sw"});
  v.push_back({spec(4, 6, 6, 16, 8), ConvVariant::kXpulpV2_Sub, false, "n4_basesub"});
  v.push_back({spec(4, 6, 6, 16, 8), ConvVariant::kXpulpV2_SubShf, false, "n4_baseshf"});
  // 2-bit.
  v.push_back({spec(2, 6, 6, 16, 8), ConvVariant::kXpulpNN_HwQ, true, "c2_hw"});
  v.push_back({spec(2, 6, 6, 16, 8), ConvVariant::kXpulpNN_SwQ, true, "c2_sw"});
  v.push_back({spec(2, 6, 6, 16, 8), ConvVariant::kXpulpV2_Sub, false, "c2_basesub"});
  // Pointwise (1x1, no padding) and larger channel counts.
  v.push_back({spec(4, 4, 4, 32, 8, 1, 0), ConvVariant::kXpulpNN_HwQ, true, "n4_1x1"});
  v.push_back({spec(2, 4, 4, 32, 8, 1, 0), ConvVariant::kXpulpNN_HwQ, true, "c2_1x1"});
  v.push_back({spec(8, 4, 4, 16, 6, 1, 0), ConvVariant::kXpulpV2_8b, true, "v8_1x1"});
  // Stride-2 downsampling conv.
  v.push_back({spec(4, 8, 8, 8, 4, 3, 1, 2), ConvVariant::kXpulpNN_HwQ, true, "n4_s2"});
  return v;
}

class ConvKernelMatchesGolden : public ::testing::TestWithParam<Case> {};

TEST_P(ConvKernelMatchesGolden, BitExact) {
  const Case& c = GetParam();
  const auto cfg = c.extended_core ? sim::CoreConfig::extended()
                                   : sim::CoreConfig::ri5cy();
  const auto data = ConvLayerData::random(c.spec, 0xfeed + c.spec.in_bits);
  const auto res = run_conv_layer(data, c.variant, cfg);
  const auto gold = data.golden();
  ASSERT_EQ(res.output.shape(), gold.shape());
  int mismatches = 0;
  for (int i = 0; i < gold.elems(); ++i) {
    if (res.output.flat(i) != gold.flat(i)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(res.macs, c.spec.macs());
  EXPECT_GT(res.perf.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ConvKernelMatchesGolden,
                         ::testing::ValuesIn(cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return std::string(info.param.name);
                         });

TEST(ConvKernels, HwQuantIsFasterThanSwQuant) {
  const auto s = spec(4, 6, 6, 16, 8);
  const auto data = ConvLayerData::random(s, 9);
  const auto hw = run_conv_layer(data, ConvVariant::kXpulpNN_HwQ,
                                 sim::CoreConfig::extended());
  const auto sw = run_conv_layer(data, ConvVariant::kXpulpNN_SwQ,
                                 sim::CoreConfig::extended());
  EXPECT_LT(hw.perf.cycles, sw.perf.cycles);
  // Both quantization flavours attribute nonzero cycles.
  EXPECT_GT(hw.quant_cycles, 0u);
  EXPECT_GT(sw.quant_cycles, hw.quant_cycles);
  EXPECT_GT(hw.perf.qnt_ops, 0u);
  EXPECT_EQ(sw.perf.qnt_ops, 0u);
}

TEST(ConvKernels, ExtensionSpeedupOrdering) {
  // XpulpNN sub-byte kernels must beat the packed baseline by a wide
  // margin, and 2-bit must beat 4-bit which must beat 8-bit (Fig. 6).
  const auto d8 = ConvLayerData::random(spec(8, 6, 6, 16, 8), 1);
  const auto d4 = ConvLayerData::random(spec(4, 6, 6, 16, 8), 1);
  const auto d2 = ConvLayerData::random(spec(2, 6, 6, 16, 8), 1);
  const auto ext = sim::CoreConfig::extended();
  const auto base = sim::CoreConfig::ri5cy();
  const auto c8 = run_conv_layer(d8, ConvVariant::kXpulpV2_8b, ext).perf.cycles;
  const auto c4 = run_conv_layer(d4, ConvVariant::kXpulpNN_HwQ, ext).perf.cycles;
  const auto c2 = run_conv_layer(d2, ConvVariant::kXpulpNN_HwQ, ext).perf.cycles;
  const auto b4 = run_conv_layer(d4, ConvVariant::kXpulpV2_Sub, base).perf.cycles;
  const auto b2 = run_conv_layer(d2, ConvVariant::kXpulpV2_Sub, base).perf.cycles;
  EXPECT_LT(c4, c8);
  EXPECT_LT(c2, c4);
  EXPECT_GT(static_cast<double>(b4) / c4, 3.0);
  EXPECT_GT(static_cast<double>(b2) / c2, 5.0);
}

TEST(ConvKernels, HardwareLoopsCarryTheInnerLoop) {
  const auto data = ConvLayerData::random(spec(4, 4, 4, 16, 4), 2);
  const auto res = run_conv_layer(data, ConvVariant::kXpulpNN_HwQ,
                                  sim::CoreConfig::extended());
  // inner hw loop: out_h*out_w/2 pixel pairs * out_c/2 pairs * (iters-1).
  EXPECT_GT(res.perf.hwloop_backedges,
            static_cast<u64>(4 * 4 / 2) * (4 / 2) * 10);
  EXPECT_GT(res.perf.dotp_ops[2], 0u);  // nibble region exercised
}

TEST(ConvKernels, UnsupportedVariantThrows) {
  const auto data = ConvLayerData::random(spec(4, 4, 4, 8, 4), 3);
  EXPECT_THROW(run_conv_layer(data, ConvVariant::kXpulpNN_HwQ,
                              sim::CoreConfig::ri5cy()),
               SimError);
}

TEST(ConvKernels, ShuffleUnpackBeatsNaiveButNotTheExtension) {
  const auto data = ConvLayerData::random(spec(4, 6, 6, 16, 8), 12);
  const auto ext = run_conv_layer(data, ConvVariant::kXpulpNN_HwQ,
                                  sim::CoreConfig::extended());
  const auto naive = run_conv_layer(data, ConvVariant::kXpulpV2_Sub,
                                    sim::CoreConfig::ri5cy());
  const auto shf = run_conv_layer(data, ConvVariant::kXpulpV2_SubShf,
                                  sim::CoreConfig::ri5cy());
  EXPECT_LT(shf.perf.cycles, naive.perf.cycles);
  EXPECT_GT(static_cast<double>(shf.perf.cycles),
            2.0 * static_cast<double>(ext.perf.cycles));
  // The ablation is 4-bit only.
  const auto d2 = ConvLayerData::random(spec(2, 6, 6, 16, 8), 13);
  EXPECT_THROW(run_conv_layer(d2, ConvVariant::kXpulpV2_SubShf,
                              sim::CoreConfig::ri5cy()),
               SimError);
}

TEST(ConvKernels, GeneratorRejectsBadGeometry) {
  // Odd output width.
  auto s = spec(4, 5, 5, 16, 8, 3, 0);
  EXPECT_THROW(generate_conv_kernel(s, ConvVariant::kXpulpNN_HwQ), SimError);
  // Channel block not word-aligned for 4-bit (in_c * 4 % 32 != 0).
  s = spec(4, 6, 6, 4, 8);
  EXPECT_THROW(generate_conv_kernel(s, ConvVariant::kXpulpNN_HwQ), SimError);
  // Mismatched variant/bitwidth.
  s = spec(8, 6, 6, 8, 4);
  EXPECT_THROW(generate_conv_kernel(s, ConvVariant::kXpulpNN_HwQ), SimError);
}

TEST(ConvKernels, MemLayoutIsDisjointAndOrdered) {
  const auto s = qnn::ConvSpec::paper_layer(4);
  const auto l = ConvMemLayout::plan(s, ConvVariant::kXpulpNN_HwQ, 0x40000);
  EXPECT_LT(l.input, l.weights);
  EXPECT_LT(l.weights, l.thresholds);
  EXPECT_LT(l.thresholds, l.buf0);
  EXPECT_LT(l.buf0, l.buf1);
  EXPECT_LT(l.buf1, l.output);
  EXPECT_EQ(l.filter_stride, 144u);
  EXPECT_EQ(l.output_bytes, 16u * 16 * 64 / 2);
  // Everything fits in the 512 kB TCDM.
  EXPECT_LT(l.output + l.output_bytes, 512u * 1024u);
}

TEST(ConvKernels, DifferentSeedsDifferentDataSameShape) {
  const auto s = spec(4, 4, 4, 8, 4);
  const auto a = ConvLayerData::random(s, 1);
  const auto b = ConvLayerData::random(s, 2);
  EXPECT_NE(a.input.data(), b.input.data());
  EXPECT_EQ(ConvLayerData::random(s, 1).input.data(), a.input.data());
}

}  // namespace
}  // namespace xpulp::kernels
