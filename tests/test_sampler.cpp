// obs::Sampler: the due-threshold sampling contract. The sampled counter
// series must be a dispatch-mode-independent artifact of the workload —
// reference, fast and superblock runs fire at identical instruction
// boundaries with identical architectural counters — and the ring must
// report drops exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "kernels/conv_layer.hpp"
#include "obs/sampler.hpp"
#include "sim/core.hpp"

namespace xpulp::obs {
namespace {

using kernels::ConvVariant;

struct SampledRun {
  std::vector<Sample> samples;
  u64 recorded = 0;
  u64 dropped = 0;
  cycles_t final_cycles = 0;
};

struct Workload {
  unsigned bits;
  ConvVariant variant;
};

// The paper's two conv kernel families: XpulpV2 8-bit and XpulpNN 4-bit
// hardware-quant, on a reduced layer so three-mode sweeps stay fast.
const Workload kWorkloads[] = {
    {8, ConvVariant::kXpulpV2_8b},
    {4, ConvVariant::kXpulpNN_HwQ},
};

qnn::ConvSpec small_spec(unsigned bits) {
  qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(bits);
  spec.in_h = spec.in_w = 6;
  spec.in_c = 16;
  spec.out_c = 8;
  return spec;
}

SampledRun run_sampled(const Workload& w, const char* mode,
                       cycles_t interval, size_t capacity = 1u << 16) {
  const auto data = kernels::ConvLayerData::random(small_spec(w.bits), 7);
  const qnn::ConvSpec& spec = data.spec;
  kernels::ConvKernel kernel =
      kernels::generate_conv_kernel(spec, w.variant, 0x40000);

  mem::Memory mem;
  kernel.program.load(mem);
  kernels::load_conv_data(data, kernel.layout, mem);

  sim::CoreConfig cfg = sim::CoreConfig::extended();
  cfg.reference_dispatch = !std::strcmp(mode, "reference");
  cfg.superblock = !std::strcmp(mode, "superblock");
  sim::Core core(mem, cfg);
  core.reset(kernel.program.entry(),
             kernel.program.base() + kernel.program.size_bytes());

  Sampler::Options opts;
  opts.interval_cycles = interval;
  opts.capacity = capacity;
  Sampler sampler(core, opts);
  EXPECT_EQ(core.run(600'000'000), sim::HaltReason::kEcall);
  sampler.finalize();

  SampledRun r;
  r.samples = sampler.samples();
  r.recorded = sampler.recorded();
  r.dropped = sampler.dropped();
  r.final_cycles = core.perf().cycles;
  return r;
}

// Architectural window state: everything except the superblock engine's
// own stats (which are definitionally zero when the engine is off). All
// three structs are plain aggregates of u64, so memcmp compares exactly.
bool arch_equal(const Sample& a, const Sample& b) {
  return a.ts_cycles == b.ts_cycles &&
         std::memcmp(&a.perf, &b.perf, sizeof(a.perf)) == 0 &&
         std::memcmp(&a.mem, &b.mem, sizeof(a.mem)) == 0 &&
         std::memcmp(&a.dotp, &b.dotp, sizeof(a.dotp)) == 0;
}

TEST(Sampler, ThreeModesProduceIdenticalSampleSeries) {
  for (const Workload& w : kWorkloads) {
    const SampledRun ref = run_sampled(w, "reference", 512);
    const SampledRun fast = run_sampled(w, "fast", 512);
    const SampledRun sb = run_sampled(w, "superblock", 512);

    ASSERT_EQ(ref.recorded, fast.recorded) << "bits " << w.bits;
    ASSERT_EQ(ref.recorded, sb.recorded) << "bits " << w.bits;
    ASSERT_EQ(ref.samples.size(), fast.samples.size());
    ASSERT_EQ(ref.samples.size(), sb.samples.size());
    EXPECT_EQ(ref.final_cycles, fast.final_cycles);
    EXPECT_EQ(ref.final_cycles, sb.final_cycles);

    for (size_t i = 0; i < ref.samples.size(); ++i) {
      EXPECT_TRUE(arch_equal(ref.samples[i], fast.samples[i]))
          << "bits " << w.bits << " window " << i;
      EXPECT_TRUE(arch_equal(ref.samples[i], sb.samples[i]))
          << "bits " << w.bits << " window " << i;
    }

    // The superblock run fuses instructions; the others never do.
    u64 sb_fused = 0, other_fused = 0;
    for (const Sample& s : sb.samples) sb_fused += s.sb.fused_instructions;
    for (const Sample& s : fast.samples) other_fused += s.sb.fused_instructions;
    EXPECT_GT(sb_fused, 0u) << "bits " << w.bits;
    EXPECT_EQ(other_fused, 0u) << "bits " << w.bits;
  }
}

TEST(Sampler, BoundariesFollowTheDueThresholdContract) {
  constexpr cycles_t kN = 256;
  const SampledRun r = run_sampled(kWorkloads[1], "fast", kN);
  ASSERT_GE(r.samples.size(), 3u);

  // Each window's end boundary is the first instruction boundary at or
  // past the next multiple of N after the previous boundary; the final
  // (trailing) window ends at halt. Window deltas chain exactly: the
  // cycle deltas sum to each boundary's absolute timestamp.
  u64 prev_ts = 0;
  for (size_t i = 0; i < r.samples.size(); ++i) {
    const Sample& s = r.samples[i];
    EXPECT_EQ(s.ts_cycles, prev_ts + s.perf.cycles) << "window " << i;
    if (i + 1 < r.samples.size()) {
      const u64 due = (prev_ts / kN + 1) * kN;
      EXPECT_GE(s.ts_cycles, due) << "window " << i;
      // The overshoot is bounded by one instruction's cost, which is
      // always far below the interval for these kernels.
      EXPECT_LT(s.ts_cycles, due + kN) << "window " << i;
    } else {
      EXPECT_EQ(s.ts_cycles, r.final_cycles);  // trailing partial window
    }
    prev_ts = s.ts_cycles;
  }
}

TEST(Sampler, RingOverflowKeepsNewestWindows) {
  constexpr size_t kCap = 8;
  const SampledRun full = run_sampled(kWorkloads[1], "fast", 128);
  const SampledRun capped = run_sampled(kWorkloads[1], "fast", 128, kCap);

  ASSERT_GT(full.recorded, kCap) << "workload too small to overflow";
  EXPECT_EQ(capped.recorded, full.recorded);
  EXPECT_EQ(capped.dropped, full.recorded - kCap);
  ASSERT_EQ(capped.samples.size(), kCap);

  // The retained windows are exactly the newest kCap, oldest first.
  const size_t off = full.samples.size() - kCap;
  for (size_t i = 0; i < kCap; ++i) {
    EXPECT_TRUE(arch_equal(capped.samples[i], full.samples[off + i]))
        << "window " << i;
  }
}

TEST(Sampler, IdleSamplerLeavesSimulatedCostUntouched) {
  const Workload& w = kWorkloads[1];
  // Baseline without any sampler.
  const auto data = kernels::ConvLayerData::random(small_spec(w.bits), 7);
  const auto res =
      kernels::run_conv_layer(data, w.variant, sim::CoreConfig::extended());

  // Interval beyond the run length: the hook never fires mid-run, and the
  // simulated cost must be bit-identical to the detached run.
  const SampledRun idle = run_sampled(w, "fast", cycles_t{1} << 62);
  EXPECT_EQ(idle.final_cycles, res.perf.cycles);
  EXPECT_EQ(idle.recorded, 1u);  // only the trailing window
  ASSERT_EQ(idle.samples.size(), 1u);
  EXPECT_EQ(idle.samples[0].perf.cycles, res.perf.cycles);
  EXPECT_EQ(idle.samples[0].perf.instructions, res.perf.instructions);
}

TEST(Sampler, DerivedMetricsAreWellFormed) {
  const SampledRun r = run_sampled(kWorkloads[1], "superblock", 512);
  const sim::CoreConfig cfg = sim::CoreConfig::extended();
  double total_fused_frac = 0;
  for (const Sample& s : r.samples) {
    const SampleMetrics m = Sampler::derive(s, cfg);
    if (s.perf.cycles == 0) continue;
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_LE(m.ipc, 2.0);
    EXPECT_GE(m.stall_frac, 0.0);
    EXPECT_LE(m.stall_frac, 1.0);
    EXPECT_GT(m.soc_mw, 0.0);
    EXPECT_GE(m.soc_mw, m.core_mw);
    total_fused_frac += m.fused_frac;
  }
  EXPECT_GT(total_fused_frac, 0.0);
}

}  // namespace
}  // namespace xpulp::obs
