// Fuzz-style robustness tests: random instruction words must either decode
// to a stable instruction or raise IllegalInstruction -- never crash,
// never decode inconsistently. Random programs over the legal instruction
// set must execute without tripping internal invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "sim_test_util.hpp"

namespace xpulp {
namespace {

TEST(FuzzDecoder, RandomWordsDecodeOrThrow) {
  Rng rng(0xf022);
  int decoded = 0, rejected = 0;
  for (int i = 0; i < 200'000; ++i) {
    const u32 w = rng.next_u32();
    try {
      const isa::Instr in = isa::decode(w, 0x100);
      ++decoded;
      // Stability: decoding the same word twice gives identical fields.
      const isa::Instr again = isa::decode(w, 0x100);
      ASSERT_EQ(in.op, again.op);
      ASSERT_EQ(in.rd, again.rd);
      ASSERT_EQ(in.rs1, again.rs1);
      ASSERT_EQ(in.rs2, again.rs2);
      ASSERT_EQ(in.imm, again.imm);
      ASSERT_EQ(in.imm2, again.imm2);
      ASSERT_EQ(in.fmt, again.fmt);
      // The disassembler accepts anything the decoder produces.
      ASSERT_FALSE(isa::disassemble(in, 0x100).empty());
    } catch (const IllegalInstruction&) {
      ++rejected;
    }
  }
  // Both outcomes must actually occur over a large sample.
  EXPECT_GT(decoded, 1000);
  EXPECT_GT(rejected, 1000);
}

TEST(FuzzDecoder, DecodeEncodeDecodeIsStable) {
  // For every word the decoder accepts, re-encoding the decoded form and
  // decoding again must land on the same instruction (the encoder may
  // canonicalize don't-care bits, so we compare decoded fields, not raw
  // words).
  Rng rng(0xf0f0);
  int checked = 0;
  for (int i = 0; i < 100'000; ++i) {
    const u32 w = rng.next_u32() | 0x3;  // bias towards 32-bit encodings
    isa::Instr in;
    try {
      in = isa::decode(w, 0);
    } catch (const IllegalInstruction&) {
      continue;
    }
    if (in.size != 4) continue;
    u32 re = 0;
    try {
      re = isa::encode(in);
    } catch (const AsmError&) {
      // Encoder is stricter than the decoder only for fields the decoder
      // ignores (e.g. fence operands); skip those.
      continue;
    }
    // The encoder canonicalizes don't-care fields (e.g. the rs2 slot of a
    // unary op), so the strong property is: canonicalization is a fixed
    // point -- encode(decode(encode(decode(w)))) == encode(decode(w)).
    const isa::Instr out = isa::decode(re, 0);
    ASSERT_EQ(out.op, in.op) << std::hex << w;
    ASSERT_EQ(isa::encode(out), re) << std::hex << w;
    ++checked;
  }
  EXPECT_GT(checked, 5000);
}

TEST(FuzzDecoder, CompressedWordsDecodeOrThrow) {
  Rng rng(0xc0de);
  int decoded = 0, rejected = 0;
  for (int i = 0; i < 100'000; ++i) {
    const u16 w = static_cast<u16>(rng.next_u32());
    if (isa::is_compressed(w)) {
      try {
        const isa::Instr in = isa::decode_compressed(w, 0);
        ASSERT_EQ(in.size, 2u);
        ++decoded;
      } catch (const IllegalInstruction&) {
        ++rejected;
      }
    }
  }
  EXPECT_GT(decoded, 1000);
  EXPECT_GT(rejected, 1000);
}

// Random straight-line programs from a legal-op generator: the simulator
// must execute them without internal faults and with the cycle invariant
// intact (cycles == instructions + accounted stalls).
TEST(FuzzExec, RandomStraightLineProgramsKeepInvariants) {
  Rng rng(0xbeef);
  for (int trial = 0; trial < 40; ++trial) {
    auto res = test::run_program([&](xasm::Assembler& a) {
      // A safe data region pointer.
      a.li(xasm::reg::s0, 0x8000);
      for (int i = 0; i < 200; ++i) {
        // Destinations avoid s0 (x8): it anchors the program's only legal
        // data pointer, and clobbering it would let a random store
        // overwrite code.
        static constexpr u8 kDests[] = {5, 6, 7, 9, 10, 11, 12, 13, 14, 15};
        const u8 rd = kDests[rng.uniform(0, 9)];
        const u8 rs1 = static_cast<u8>(rng.uniform(5, 15));
        const u8 rs2 = kDests[rng.uniform(0, 9)];
        switch (rng.uniform(0, 9)) {
          case 0: a.add(rd, rs1, rs2); break;
          case 1: a.sub(rd, rs1, rs2); break;
          case 2: a.mul(rd, rs1, rs2); break;
          case 3: a.p_max(rd, rs1, rs2); break;
          case 4: a.pv_add(isa::SimdFmt::kN, rd, rs1, rs2); break;
          case 5: a.pv_sdotusp(isa::SimdFmt::kC, rd, rs1, rs2); break;
          case 6: a.lw(rd, xasm::reg::s0, rng.uniform(0, 500) * 4); break;
          case 7: a.sw(rd, xasm::reg::s0, rng.uniform(0, 500) * 4); break;
          case 8: a.p_extractu(rd, rs1, 1 + rng.uniform(0, 7),
                               rng.uniform(0, 24)); break;
          case 9: a.srai(rd, rs1, static_cast<u32>(rng.uniform(0, 31))); break;
        }
      }
    });
    ASSERT_EQ(res.reason, sim::HaltReason::kEcall);
    const auto& p = res.perf;
    ASSERT_EQ(p.cycles, p.instructions + p.branch_stall_cycles +
                            p.load_use_stall_cycles + p.mem_stall_cycles +
                            p.mul_div_stall_cycles + p.qnt_stall_cycles);
  }
}

}  // namespace
}  // namespace xpulp
