// Fault-injection campaigns: detection guarantees, recovery policies and
// seed-determinism of the harness in src/ckpt/fault.cpp.
#include <gtest/gtest.h>

#include <algorithm>

#include "ckpt/fault.hpp"
#include "obs/registry.hpp"

namespace xpulp::ckpt {
namespace {

/// Small layer so a hundred trials stay fast; everything else defaults.
CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.spec.in_h = cfg.spec.in_w = 6;
  cfg.spec.in_c = 16;
  cfg.spec.out_c = 8;
  cfg.ckpt_every = 500;
  return cfg;
}

TEST(FaultCampaign, TcdmFlipsAlwaysDetected) {
  // The memory scrub closes the detection stack: a TCDM flip in a
  // persistent region either perturbs the run observably or survives into
  // the final image — there is no escape path.
  CampaignConfig cfg = small_config();
  cfg.seed = 42;
  cfg.num_faults = 100;
  const CampaignReport rep = run_campaign(cfg);

  EXPECT_EQ(rep.injected, 100);
  EXPECT_EQ(rep.undetected, 0);
  EXPECT_EQ(rep.masked, 0);  // persistent-region flips are never dead
  EXPECT_DOUBLE_EQ(rep.detection_rate(), 1.0);
  EXPECT_GT(rep.reference_instructions, 0u);

  // Transient flips must actually recover via restore-and-retry; only
  // persistent (stuck-at) faults may exhaust the retry budget.
  for (const FaultRecord& r : rep.records) {
    ASSERT_NE(r.outcome, FaultOutcome::kUndetected);
    if (r.outcome == FaultOutcome::kDetectedUnrecovered) {
      EXPECT_TRUE(r.spec.persistent) << r.note;
    }
    if (!r.spec.persistent) {
      EXPECT_EQ(r.outcome, FaultOutcome::kDetectedRecovered) << r.note;
    }
  }
  const bool any_recovered =
      std::any_of(rep.records.begin(), rep.records.end(), [](const auto& r) {
        return r.outcome == FaultOutcome::kDetectedRecovered;
      });
  EXPECT_TRUE(any_recovered);
}

TEST(FaultCampaign, SameSeedSameFingerprint) {
  CampaignConfig cfg = small_config();
  cfg.seed = 7;
  cfg.num_faults = 30;
  const CampaignReport a = run_campaign(cfg);
  const CampaignReport b = run_campaign(cfg);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.recovered, b.recovered);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].spec.at_instruction,
              b.records[i].spec.at_instruction);
    EXPECT_EQ(a.records[i].spec.addr, b.records[i].spec.addr);
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
  }

  cfg.seed = 8;
  const CampaignReport c = run_campaign(cfg);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(FaultCampaign, MixedKindsClassifyByDetector) {
  CampaignConfig cfg = small_config();
  cfg.seed = 11;
  cfg.num_faults = 40;
  cfg.kinds = {FaultKind::kTcdmBitFlip, FaultKind::kRegisterBitFlip,
               FaultKind::kStallPerturb, FaultKind::kIsaDegrade};
  const CampaignReport rep = run_campaign(cfg);

  EXPECT_EQ(rep.injected, 40);
  EXPECT_EQ(rep.undetected, 0);
  EXPECT_DOUBLE_EQ(rep.detection_rate(), 1.0);

  for (const FaultRecord& r : rep.records) {
    switch (r.spec.kind) {
      case FaultKind::kStallPerturb:
        // A perturbed cycle counter breaks exactly the accounting
        // invariant; nothing architectural changes.
        EXPECT_EQ(r.detector, Detector::kPerfInvariant);
        EXPECT_EQ(r.outcome, FaultOutcome::kDetectedRecovered);
        break;
      case FaultKind::kIsaDegrade:
        // Sub-byte SIMD turns illegal mid-kernel: the guest traps, and the
        // default policy recovers through the XpulpV2 fallback kernel.
        EXPECT_EQ(r.detector, Detector::kTrap);
        EXPECT_EQ(r.outcome, FaultOutcome::kDetectedRecovered);
        EXPECT_TRUE(r.used_fallback);
        break;
      case FaultKind::kRegisterBitFlip:
        // May be masked (dead register); if not, it must be detected.
        if (r.outcome != FaultOutcome::kMasked) {
          EXPECT_NE(r.detector, Detector::kNone);
        }
        break;
      case FaultKind::kTcdmBitFlip:
        EXPECT_NE(r.outcome, FaultOutcome::kUndetected);
        break;
    }
  }
}

TEST(FaultCampaign, IsaDegradeNeedsFallbackPolicy) {
  CampaignConfig cfg = small_config();
  cfg.seed = 5;
  cfg.num_faults = 8;
  cfg.kinds = {FaultKind::kIsaDegrade};

  const CampaignReport with = run_campaign(cfg);
  EXPECT_EQ(with.detected, 8);
  EXPECT_EQ(with.recovered, 8);
  for (const FaultRecord& r : with.records) EXPECT_TRUE(r.used_fallback);

  // Without graceful degradation the fault is permanent: restore-and-retry
  // re-trips the dead functional unit every time.
  cfg.fallback_isa = false;
  const CampaignReport without = run_campaign(cfg);
  EXPECT_EQ(without.detected, 8);
  EXPECT_EQ(without.recovered, 0);
  EXPECT_EQ(without.unrecovered, 8);
}

TEST(FaultCampaign, PublishesRegistryMetrics) {
  CampaignConfig cfg = small_config();
  cfg.seed = 13;
  cfg.num_faults = 10;
  const CampaignReport rep = run_campaign(cfg);

  obs::Registry reg;
  rep.publish(reg, "xfault");
  for (const char* key :
       {"xfault.injected", "xfault.detected", "xfault.recovered",
        "xfault.detection_rate", "xfault.fingerprint"}) {
    EXPECT_TRUE(reg.contains(key)) << key;
  }
  // The export must be serializable (no leaf/prefix path collisions).
  EXPECT_FALSE(reg.json().empty());
}

}  // namespace
}  // namespace xpulp::ckpt
