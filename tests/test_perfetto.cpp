// Chrome/Perfetto trace export: the emitted trace.json must parse as
// JSON, every B must have a matching E on the same track in order, event
// timestamps must be non-decreasing, and cluster runs must map core i to
// a stable pid/tid lane. A mini JSON parser lives in this test so the
// checks exercise the real byte stream, not the Timeline's internals.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/parallel_conv.hpp"
#include "kernels/conv_layer.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "obs/timeline.hpp"

namespace xpulp::obs {
namespace {

// ------------------------------------------------------- mini JSON parser

struct JValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JValue> arr;
  std::vector<std::pair<std::string, JValue>> obj;

  const JValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct JParser {
  const std::string& s;
  size_t i = 0;
  bool ok = true;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    ok = false;
    return false;
  }

  std::string parse_string() {
    std::string out;
    if (!eat('"')) return out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': i += 4; out += '?'; break;
          default: out += s[i];
        }
      } else {
        out += s[i];
      }
      ++i;
    }
    if (!eat('"')) ok = false;
    return out;
  }

  JValue parse() {
    JValue v;
    skip_ws();
    if (i >= s.size()) {
      ok = false;
      return v;
    }
    const char c = s[i];
    if (c == '{') {
      ++i;
      v.type = JValue::Type::kObject;
      skip_ws();
      if (i < s.size() && s[i] == '}') {
        ++i;
        return v;
      }
      while (ok) {
        std::string key = parse_string();
        eat(':');
        v.obj.emplace_back(std::move(key), parse());
        skip_ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        eat('}');
        break;
      }
    } else if (c == '[') {
      ++i;
      v.type = JValue::Type::kArray;
      skip_ws();
      if (i < s.size() && s[i] == ']') {
        ++i;
        return v;
      }
      while (ok) {
        v.arr.push_back(parse());
        skip_ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        eat(']');
        break;
      }
    } else if (c == '"') {
      v.type = JValue::Type::kString;
      v.str = parse_string();
    } else if (c == 't' || c == 'f') {
      v.type = JValue::Type::kBool;
      v.boolean = (c == 't');
      i += v.boolean ? 4 : 5;
    } else if (c == 'n') {
      i += 4;
    } else {
      v.type = JValue::Type::kNumber;
      size_t end = i;
      while (end < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[end])) ||
              s[end] == '-' || s[end] == '+' || s[end] == '.' ||
              s[end] == 'e' || s[end] == 'E')) {
        ++end;
      }
      v.number = std::stod(s.substr(i, end - i));
      i = end;
    }
    return v;
  }
};

JValue parse_json(const std::string& text, bool& ok) {
  JParser p{text};
  JValue v = p.parse();
  p.skip_ws();
  ok = p.ok && p.i == text.size();
  return v;
}

/// Schema + nesting checks shared by every test; fills `out` (if given)
/// with the parsed traceEvents array.
void check_trace(const std::string& text,
                 std::vector<JValue>* out = nullptr) {
  bool ok = false;
  JValue root = parse_json(text, ok);
  ASSERT_TRUE(ok) << "trace is not valid JSON";
  ASSERT_EQ(root.type, JValue::Type::kObject);
  const JValue* other = root.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_NE(other->find("dropped_events"), nullptr);
  const JValue* evs = root.find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_EQ(evs->type, JValue::Type::kArray);

  std::map<double, std::vector<std::string>> open;  // tid -> B-name stack
  std::map<std::pair<double, std::string>, double> counter_ts;
  double last_ts = -1;
  for (const JValue& e : evs->arr) {
    EXPECT_EQ(e.type, JValue::Type::kObject);
    const JValue* name = e.find("name");
    const JValue* ph = e.find("ph");
    const JValue* pid = e.find("pid");
    const JValue* tid = e.find("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    EXPECT_EQ(pid->number, 0);  // one process
    if (ph->str == "M") continue;

    const JValue* ts = e.find("ts");
    ASSERT_NE(ts, nullptr);
    if (ph->str == "C") {
      // Counter tracks are appended after the slice events; they are
      // ordered per (tid, name) track rather than globally.
      const JValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      const JValue* value = args->find("value");
      ASSERT_NE(value, nullptr);
      EXPECT_EQ(value->type, JValue::Type::kNumber);
      const auto key = std::make_pair(tid->number, name->str);
      const auto it = counter_ts.find(key);
      if (it != counter_ts.end()) {
        EXPECT_GE(ts->number, it->second)
            << "counter track " << name->str << " not monotonic";
      }
      counter_ts[key] = ts->number;
      continue;
    }
    EXPECT_GE(ts->number, last_ts) << "timestamps must be non-decreasing";
    last_ts = ts->number;
    if (ph->str == "B") {
      open[tid->number].push_back(name->str);
    } else if (ph->str == "E") {
      auto& stack = open[tid->number];
      ASSERT_FALSE(stack.empty())
          << "E \"" << name->str << "\" with no open B on tid "
          << tid->number;
      EXPECT_EQ(stack.back(), name->str) << "mismatched nesting";
      stack.pop_back();
    } else if (ph->str == "X") {
      ASSERT_NE(e.find("dur"), nullptr);
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed B on tid " << tid;
  }
  if (out) *out = evs->arr;
}

std::set<double> event_tids(const std::vector<JValue>& evs) {
  std::set<double> tids;
  for (const JValue& e : evs) {
    if (e.find("ph")->str != "M") tids.insert(e.find("tid")->number);
  }
  return tids;
}

// ------------------------------------------------------------------ tests

TEST(Perfetto, GoldenSmallTrace) {
  Timeline tl;
  tl.set_track_name(0, "core0");
  Event b;
  b.kind = EventKind::kRegionBegin;
  b.name = tl.intern("conv");
  b.ts = 0;
  tl.record(b);
  Event e;
  e.kind = EventKind::kRegionEnd;
  e.name = b.name;
  e.ts = 10;
  tl.record(e);

  const std::string expected =
      "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\"cycles\","
      "\"tool\":\"xprof\",\"dropped_events\":0},\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"xpulpnn-sim\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"core0\"}},\n"
      "{\"name\":\"conv\",\"pid\":0,\"tid\":0,\"ts\":0,\"ph\":\"B\","
      "\"cat\":\"region\"},\n"
      "{\"name\":\"conv\",\"pid\":0,\"tid\":0,\"ts\":10,\"ph\":\"E\","
      "\"cat\":\"region\"}\n"
      "]}\n";
  EXPECT_EQ(tl.chrome_json(), expected);
  check_trace(tl.chrome_json());
}

TEST(Perfetto, ProfiledConvTraceIsSchemaValid) {
  qnn::ConvSpec s;
  s.in_h = s.in_w = 6;
  s.in_c = 16;
  s.out_c = 8;
  s.in_bits = s.w_bits = s.out_bits = 4;
  const auto data = kernels::ConvLayerData::random(s, 7);
  kernels::ConvKernel kernel = kernels::generate_conv_kernel(
      s, kernels::ConvVariant::kXpulpNN_HwQ, 0x40000);

  mem::Memory mem;
  kernel.program.load(mem);
  kernels::load_conv_data(data, kernel.layout, mem);
  sim::Core core(mem);
  core.reset(kernel.program.entry(),
             kernel.program.base() + kernel.program.size_bytes());

  Timeline tl;
  tl.set_track_name(0, "core0");
  Profiler::Options o;
  o.timeline = &tl;
  Profiler prof(core, kernel.regions, o);
  ASSERT_EQ(core.run(), sim::HaltReason::kEcall);
  prof.finalize();

  std::vector<JValue> evs;
  check_trace(tl.chrome_json(), &evs);
  EXPECT_GT(evs.size(), 4u);
  EXPECT_EQ(event_tids(evs), std::set<double>{0});

  // Region slices for the kernel phases must be present.
  std::set<std::string> names;
  for (const JValue& e : evs) names.insert(e.find("name")->str);
  EXPECT_TRUE(names.count("matmul"));
  EXPECT_TRUE(names.count("quant"));
  EXPECT_TRUE(names.count("im2col"));
}

TEST(Perfetto, ClusterLanesHaveStableTids) {
  qnn::ConvSpec s;
  s.in_h = s.in_w = 6;
  s.in_c = 16;
  s.out_c = 8;
  s.in_bits = s.w_bits = s.out_bits = 4;
  const auto data = kernels::ConvLayerData::random(s, 7);

  cluster::ClusterConfig ccfg;
  ccfg.num_cores = 2;

  Timeline tl;
  std::vector<std::unique_ptr<Profiler>> profs;
  const auto res = cluster::run_parallel_conv(
      data, kernels::ConvVariant::kXpulpNN_HwQ, ccfg,
      [&](cluster::Cluster& cl, const std::vector<kernels::ConvKernel>& ks) {
        for (int c = 0; c < cl.num_cores(); ++c) {
          Profiler::Options o;
          o.timeline = &tl;
          o.track = static_cast<u8>(c);
          tl.set_track_name(static_cast<u8>(c), "core" + std::to_string(c));
          profs.push_back(std::make_unique<Profiler>(
              cl.core(c), ks[static_cast<size_t>(c)].regions, o));
        }
      },
      // Finalize while the cluster (and its cores) still exist.
      [&](cluster::Cluster&, const std::vector<kernels::ConvKernel>&) {
        for (auto& p : profs) p->finalize();
      });
  EXPECT_EQ(res.output, data.golden());

  std::vector<JValue> evs;
  check_trace(tl.chrome_json(), &evs);
  EXPECT_EQ(event_tids(evs), (std::set<double>{0, 1}));

  // Both lanes are labelled via thread_name metadata.
  std::set<std::string> lanes;
  for (const JValue& e : evs) {
    if (e.find("name")->str == "thread_name") {
      lanes.insert(e.find("args")->find("name")->str);
    }
  }
  EXPECT_TRUE(lanes.count("core0"));
  EXPECT_TRUE(lanes.count("core1"));
}

TEST(Perfetto, RingOverflowIsRepaired) {
  Timeline tl(/*capacity=*/8);
  tl.set_track_name(0, "core0");
  const u16 outer = tl.intern("outer");
  const u16 inner = tl.intern("inner");
  // An enclosing slice whose B falls off the ring, plus enough nested
  // pairs to wrap it several times.
  Event b;
  b.kind = EventKind::kRegionBegin;
  b.name = outer;
  b.ts = 0;
  tl.record(b);
  for (u64 t = 1; t < 12; ++t) {
    Event nb;
    nb.kind = EventKind::kRegionBegin;
    nb.name = inner;
    nb.ts = 10 * t;
    tl.record(nb);
    Event ne;
    ne.kind = EventKind::kRegionEnd;
    ne.name = inner;
    ne.ts = 10 * t + 5;
    tl.record(ne);
  }
  Event e;
  e.kind = EventKind::kRegionEnd;
  e.name = outer;
  e.ts = 1000;
  tl.record(e);

  EXPECT_GT(tl.dropped(), 0u);
  // The "outer" B was dropped from the ring; the exporter must fabricate
  // a synthetic B so the surviving E still nests.
  check_trace(tl.chrome_json());

  bool ok = false;
  const JValue root = parse_json(tl.chrome_json(), ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(root.find("otherData")->find("dropped_events")->number,
            static_cast<double>(tl.dropped()));
}

TEST(Perfetto, AbandonedRunClosesOpenSlices) {
  Timeline tl;
  tl.set_track_name(0, "core0");
  Event b;
  b.kind = EventKind::kRegionBegin;
  b.name = tl.intern("never-ends");
  b.ts = 5;
  tl.record(b);
  Event x;
  x.kind = EventKind::kInstrBlock;
  x.name = tl.intern("block");
  x.ts = 5;
  x.dur = 20;
  x.value = 10;
  tl.record(x);
  check_trace(tl.chrome_json());  // synthetic E at the window end
}

// ---------------------------------------------------------- counter tracks

TEST(Perfetto, CounterFreeOutputHasNoCounterArtifacts) {
  // A timeline without counter points must emit byte-for-byte what
  // pre-counter builds emitted (GoldenSmallTrace locks the exact bytes);
  // in particular no "ph":"C" events and no dropped_counters key.
  Timeline tl;
  tl.set_track_name(0, "core0");
  Event b;
  b.kind = EventKind::kRegionBegin;
  b.name = tl.intern("conv");
  b.ts = 0;
  tl.record(b);
  Event e;
  e.kind = EventKind::kRegionEnd;
  e.name = b.name;
  e.ts = 10;
  tl.record(e);
  const std::string text = tl.chrome_json();
  EXPECT_EQ(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(text.find("dropped_counters"), std::string::npos);
}

TEST(Perfetto, CounterPointsExportAsSchemaValidCounterEvents) {
  Timeline tl;
  tl.set_track_name(0, "core0");
  tl.set_track_name(1, "core1");
  const u16 ipc = tl.intern("core0/ipc");
  const u16 ipc1 = tl.intern("core1/ipc");
  for (int i = 0; i < 4; ++i) {
    CounterPoint p;
    p.ts = static_cast<u64>(100 * (i + 1));
    p.value = 0.5 + 0.1 * i;
    p.name = ipc;
    p.track = 0;
    tl.record_counter(p);
    p.name = ipc1;
    p.track = 1;
    tl.record_counter(p);
  }

  std::vector<JValue> evs;
  check_trace(tl.chrome_json(), &evs);

  int counters = 0;
  std::set<double> tids;
  for (const JValue& e : evs) {
    if (e.find("ph")->str != "C") continue;
    ++counters;
    tids.insert(e.find("tid")->number);
    EXPECT_EQ(e.find("cat")->str, "counter");
  }
  EXPECT_EQ(counters, 8);
  EXPECT_EQ(tids, (std::set<double>{0, 1}));  // per-core track ids

  bool ok = false;
  const JValue root = parse_json(tl.chrome_json(), ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(root.find("otherData")->find("dropped_counters")->number, 0.0);
}

TEST(Perfetto, CounterRingOverflowIsReportedAndOutputStaysValid) {
  Timeline tl;
  tl.set_track_name(0, "core0");
  tl.set_counter_capacity(4);
  const u16 ipc = tl.intern("core0/ipc");
  for (int i = 0; i < 10; ++i) {
    CounterPoint p;
    p.ts = static_cast<u64>(10 * i);
    p.value = i;
    p.name = ipc;
    p.track = 0;
    tl.record_counter(p);
  }
  EXPECT_EQ(tl.counters_recorded(), 10u);
  EXPECT_EQ(tl.counters_dropped(), 6u);

  std::vector<JValue> evs;
  check_trace(tl.chrome_json(), &evs);
  // Only the newest 4 points survive; the track just starts later.
  int counters = 0;
  double first_ts = -1;
  for (const JValue& e : evs) {
    if (e.find("ph")->str != "C") continue;
    if (counters == 0) first_ts = e.find("ts")->number;
    ++counters;
  }
  EXPECT_EQ(counters, 4);
  EXPECT_EQ(first_ts, 60.0);

  bool ok = false;
  const JValue root = parse_json(tl.chrome_json(), ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(root.find("otherData")->find("dropped_counters")->number, 6.0);
}

TEST(Perfetto, SampledConvTraceHasMonotonicCounterTracks) {
  qnn::ConvSpec s;
  s.in_h = s.in_w = 6;
  s.in_c = 16;
  s.out_c = 8;
  s.in_bits = s.w_bits = s.out_bits = 4;
  const auto data = kernels::ConvLayerData::random(s, 7);
  kernels::ConvKernel kernel = kernels::generate_conv_kernel(
      s, kernels::ConvVariant::kXpulpNN_HwQ, 0x40000);

  mem::Memory mem;
  kernel.program.load(mem);
  kernels::load_conv_data(data, kernel.layout, mem);
  sim::Core core(mem, sim::CoreConfig::extended());
  core.reset(kernel.program.entry(),
             kernel.program.base() + kernel.program.size_bytes());

  Timeline tl;
  tl.set_track_name(0, "core0");
  Sampler::Options o;
  o.interval_cycles = 512;
  o.timeline = &tl;
  Sampler sampler(core, o);
  ASSERT_EQ(core.run(), sim::HaltReason::kEcall);
  sampler.finalize();

  // check_trace verifies per-(tid, name) counter monotonicity.
  std::vector<JValue> evs;
  check_trace(tl.chrome_json(), &evs);

  std::set<std::string> tracks;
  int counters = 0;
  for (const JValue& e : evs) {
    if (e.find("ph")->str != "C") continue;
    ++counters;
    tracks.insert(e.find("name")->str);
  }
  // Six derived-metric tracks, one point per sampled window.
  EXPECT_EQ(tracks, (std::set<std::string>{
                        "core0/ipc", "core0/stall_frac",
                        "core0/macs_per_cycle", "core0/fused_frac",
                        "core0/core_mw", "core0/soc_mw"}));
  EXPECT_EQ(counters, static_cast<int>(6 * sampler.recorded()));
}

}  // namespace
}  // namespace xpulp::obs
