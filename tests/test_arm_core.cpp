// ARMv7E-M model: DSP instruction semantics and the M4/M7 timing rules.
#include <gtest/gtest.h>

#include "armv7e/arm_asm.hpp"
#include "armv7e/arm_core.hpp"

namespace xpulp::armv7e {
namespace {

struct ArmRun {
  std::array<u32, 16> regs{};
  ArmPerf perf;
};

ArmRun run(const std::function<void(ArmAsm&)>& body,
           ArmModel model = ArmModel::kCortexM4,
           const std::function<void(mem::Memory&)>& setup = {}) {
  ArmAsm a;
  body(a);
  a.halt();
  mem::Memory mem(64 * 1024);
  if (setup) setup(mem);
  ArmCore core(mem, model);
  core.load_program(a.finish());
  core.run();
  ArmRun r;
  for (unsigned i = 0; i < 16; ++i) r.regs[i] = core.reg(i);
  r.perf = core.perf();
  return r;
}

TEST(ArmCore, MovImmMaterializes32Bits) {
  auto r = run([](ArmAsm& a) {
    a.mov_imm(0, 0xdeadbeefu);
    a.mov_imm(1, 0x1234u);  // single MOVW
  });
  EXPECT_EQ(r.regs[0], 0xdeadbeefu);
  EXPECT_EQ(r.regs[1], 0x1234u);
}

TEST(ArmCore, Smlad) {
  auto r = run([](ArmAsm& a) {
    a.mov_imm(1, 0x0003'0002u);   // halves (2, 3)
    a.mov_imm(2, 0xFFFF'0004u);   // halves (4, -1)
    a.mov_imm(3, 100);
    a.smlad(0, 1, 2, 3);          // 100 + 2*4 + 3*(-1) = 105
    a.smuad(4, 1, 2);             // 5
    a.smlabb(5, 1, 2, 3);         // 100 + 2*4 = 108
  });
  EXPECT_EQ(r.regs[0], 105u);
  EXPECT_EQ(r.regs[4], 5u);
  EXPECT_EQ(r.regs[5], 108u);
}

TEST(ArmCore, Sxtb16AndPkh) {
  auto r = run([](ArmAsm& a) {
    a.mov_imm(1, 0x85FF7F01u);  // bytes: 01 7F FF 85
    a.sxtb16(2, 1);             // halves (0x01, 0xFFFF) = (1, -1)
    a.sxtb16_ror8(3, 1);        // halves (0x7F, 0x85 sext) = (127, -123)
    a.uxtb16(4, 1);             // (0x01, 0x00FF)
    a.uxtb16_ror8(5, 1);        // (0x7F, 0x85)
    a.pkhbt(6, 2, 3);           // (2.h0, 3.h0 << 16)
    a.pkhtb(7, 3, 2);           // (3.h1, 2.h1)
  });
  EXPECT_EQ(r.regs[2], 0xFFFF0001u);
  EXPECT_EQ(r.regs[3], 0xFF85007Fu);
  EXPECT_EQ(r.regs[4], 0x00FF0001u);
  EXPECT_EQ(r.regs[5], 0x0085007Fu);
  EXPECT_EQ(r.regs[6], 0x007F0001u);
  EXPECT_EQ(r.regs[7], 0xFF85FFFFu);
}

TEST(ArmCore, SaturationAndBitfields) {
  auto r = run([](ArmAsm& a) {
    a.mov_imm(1, 300);
    a.usat(2, 1, 8);
    a.ssat(3, 1, 8);
    a.mov_imm(4, 0xdeadbeefu);
    a.ubfx(5, 4, 8, 8);   // 0xbe
    a.sbfx(6, 4, 8, 8);   // sign-extended 0xbe
    a.mov_imm(7, 0);
    a.mov_imm(8, 0x5);
    a.bfi(7, 8, 4, 4);    // 0x50
  });
  EXPECT_EQ(r.regs[2], 255u);
  EXPECT_EQ(r.regs[3], 127u);
  EXPECT_EQ(r.regs[5], 0xbeu);
  EXPECT_EQ(static_cast<i32>(r.regs[6]), static_cast<i32>(0xffffffbe));
  EXPECT_EQ(r.regs[7], 0x50u);
}

TEST(ArmCore, LoadStorePostIndex) {
  auto r = run(
      [](ArmAsm& a) {
        a.mov_imm(1, 0x100);
        a.ldr_post(2, 1, 4);
        a.ldrb_post(3, 1, 1);
        a.ldrsh(4, 1, 1);       // offset addressing, no writeback
        a.mov(5, 1);
        a.mov_imm(6, 0x77);
        a.strb_post(6, 1, 1);
      },
      ArmModel::kCortexM4,
      [](mem::Memory& m) {
        m.store_u32(0x100, 0x11223344u);
        m.store_u32(0x104, 0x8000a5ffu);
      });
  EXPECT_EQ(r.regs[2], 0x11223344u);
  EXPECT_EQ(r.regs[3], 0xffu);
  EXPECT_EQ(static_cast<i32>(r.regs[4]), static_cast<i32>(0xffff8000));
  EXPECT_EQ(r.regs[5], 0x105u);
}

TEST(ArmCore, ConditionalBranches) {
  auto r = run([](ArmAsm& a) {
    a.mov_imm(0, 5);
    a.mov_imm(1, 0);
    auto loop = a.here();
    a.add_imm(1, 1, 3);
    a.sub_imm(0, 0, 1);
    a.cmp_imm(0, 0);
    a.b(AOp::kBne, loop);
    // Signed vs unsigned comparisons.
    a.mov_imm(2, 0xffffffffu);  // -1
    a.mov_imm(3, 1);
    a.cmp(2, 3);
    auto sk1 = a.new_label();
    a.b(AOp::kBlt, sk1);  // signed: taken
    a.mov_imm(4, 111);    // skipped
    a.bind(sk1);
    a.cmp(2, 3);
    auto sk2 = a.new_label();
    a.b(AOp::kBlo, sk2);  // unsigned: NOT taken
    a.mov_imm(5, 222);
    a.bind(sk2);
  });
  EXPECT_EQ(r.regs[1], 15u);
  EXPECT_EQ(r.regs[4], 0u);
  EXPECT_EQ(r.regs[5], 222u);
}

TEST(ArmCore, CallReturn) {
  auto r = run([](ArmAsm& a) {
    auto func = a.new_label();
    auto over = a.new_label();
    a.mov_imm(0, 1);
    a.bl(func);
    a.add_imm(0, 0, 100);
    a.b(over);
    a.bind(func);
    a.add_imm(0, 0, 10);
    a.bx_lr();
    a.bind(over);
  });
  EXPECT_EQ(r.regs[0], 111u);
}

TEST(ArmCore, M4TimingLoadsAndBranches) {
  auto r = run([](ArmAsm& a) {
    a.mov_imm(1, 0x100);   // 1 cycle (MOVW)
    a.ldr(2, 1, 0);        // 2 cycles
    a.add_imm(3, 3, 1);    // 1
    a.nop();               // 1
  });
  // + halt (counted as a branch-class op, 1 cycle untaken... kHalt returns
  // next pc so not taken): total = 1+2+1+1+1 = 6.
  EXPECT_EQ(r.perf.cycles, 6u);
  EXPECT_EQ(r.perf.loads, 1u);
}

TEST(ArmCore, M7DualIssuesIndependentPairs) {
  auto body = [](ArmAsm& a) {
    for (int i = 0; i < 10; ++i) {
      a.add_imm(1, 1, 1);
      a.add_imm(2, 2, 1);  // independent: pairable
    }
  };
  auto m4 = run(body, ArmModel::kCortexM4);
  auto m7 = run(body, ArmModel::kCortexM7);
  EXPECT_EQ(m4.perf.cycles, 21u);  // 20 + halt
  EXPECT_EQ(m7.perf.dual_issued_pairs, 10u);
  EXPECT_LT(m7.perf.cycles, m4.perf.cycles * 6 / 10);
}

TEST(ArmCore, M7DoesNotPairDependentOrDoubleMemory) {
  // A serial dependency chain defeats dual issue entirely (each
  // instruction reads and writes r1).
  auto dep = run(
      [](ArmAsm& a) {
        for (int i = 0; i < 20; ++i) a.add_imm(1, 1, 1);
      },
      ArmModel::kCortexM7);
  EXPECT_EQ(dep.perf.dual_issued_pairs, 0u);

  auto mem2 = run(
      [](ArmAsm& a) {
        a.mov_imm(1, 0x100);
        a.mov_imm(2, 0x200);  // this MOVW pair dual-issues (1 pair)
        for (int i = 0; i < 4; ++i) {
          a.ldr(3, 1, 0);
          a.ldr(4, 2, 0);  // two memory ops never pair with each other
        }
      },
      ArmModel::kCortexM7);
  EXPECT_EQ(mem2.perf.dual_issued_pairs, 1u);
}

TEST(ArmCore, BudgetGuard) {
  ArmAsm a;
  auto loop = a.here();
  a.b(loop);  // infinite
  mem::Memory mem(1024);
  ArmCore core(mem, ArmModel::kCortexM4);
  core.load_program(a.finish());
  EXPECT_THROW(core.run(1000), SimError);
}

}  // namespace
}  // namespace xpulp::armv7e
