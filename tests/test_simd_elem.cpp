// XpulpV2 element-manipulation SIMD ops (pv.extract/insert/shuffle/pack)
// and the immediate-compare branches (p.beqimm/p.bneimm).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "isa/decoder.hpp"
#include "isa/encoding.hpp"
#include "sim_test_util.hpp"

namespace xpulp {
namespace {

namespace r = xasm::reg;
using isa::SimdFmt;
using test::run_program;

TEST(SimdElem, ExtractByteAndHalf) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, static_cast<i32>(0x80FF7F01u));
    a.pv_extract(SimdFmt::kB, r::t0, r::a0, 0);   // 0x01 -> 1
    a.pv_extract(SimdFmt::kB, r::t1, r::a0, 1);   // 0x7f -> 127
    a.pv_extract(SimdFmt::kB, r::t2, r::a0, 2);   // 0xff -> -1
    a.pv_extract(SimdFmt::kB, r::t3, r::a0, 3);   // 0x80 -> -128
    a.pv_extractu(SimdFmt::kB, r::t4, r::a0, 3);  // 0x80 -> 128
    a.pv_extract(SimdFmt::kH, r::t5, r::a0, 1);   // 0x80ff -> -32513
    a.pv_extractu(SimdFmt::kH, r::t6, r::a0, 1);  // 0x80ff
  });
  EXPECT_EQ(static_cast<i32>(res.regs[r::t0]), 1);
  EXPECT_EQ(static_cast<i32>(res.regs[r::t1]), 127);
  EXPECT_EQ(static_cast<i32>(res.regs[r::t2]), -1);
  EXPECT_EQ(static_cast<i32>(res.regs[r::t3]), -128);
  EXPECT_EQ(res.regs[r::t4], 128u);
  EXPECT_EQ(static_cast<i32>(res.regs[r::t5]), static_cast<i32>(0xffff80ff));
  EXPECT_EQ(res.regs[r::t6], 0x80ffu);
}

TEST(SimdElem, InsertReadModifiesRd) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 0x5a);
    a.li(r::t0, 0x11223344);
    a.pv_insert(SimdFmt::kB, r::t0, r::a0, 2);  // byte 2 := 0x5a
    a.li(r::t1, 0);
    a.li(r::a1, 0xbeef ^ 0x10000);  // any 16-bit payload
    a.li(r::a1, 0x1234);
    a.pv_insert(SimdFmt::kH, r::t1, r::a1, 1);  // half 1 := 0x1234
  });
  EXPECT_EQ(res.regs[r::t0], 0x115a3344u);
  EXPECT_EQ(res.regs[r::t1], 0x12340000u);
}

TEST(SimdElem, ShuffleBytesAndHalves) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 0x44332211);
    a.li(r::a1, 0x00010203);       // byte lane selectors: reverse
    a.pv_shuffle(SimdFmt::kB, r::t0, r::a0, r::a1);
    a.li(r::a2, 0x00000000);       // broadcast lane 0
    a.pv_shuffle(SimdFmt::kB, r::t1, r::a0, r::a2);
    a.li(r::a3, 0x00000001);       // halves: swap
    a.pv_shuffle(SimdFmt::kH, r::t2, r::a0, r::a3);
  });
  EXPECT_EQ(res.regs[r::t0], 0x11223344u);
  EXPECT_EQ(res.regs[r::t1], 0x11111111u);
  EXPECT_EQ(res.regs[r::t2], 0x22114433u);
}

TEST(SimdElem, PackH) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, static_cast<i32>(0xAAAA1111u));
    a.li(r::a1, static_cast<i32>(0xBBBB2222u));
    a.pv_pack_h(r::t0, r::a0, r::a1);  // {a0.h0, a1.h0}
  });
  EXPECT_EQ(res.regs[r::t0], 0x11112222u);
}

TEST(SimdElem, EncodingRejectsSubByteAndBadLanes) {
  xasm::Assembler a(0);
  EXPECT_THROW(a.pv_extract(SimdFmt::kN, r::t0, r::a0, 0), AsmError);
  EXPECT_THROW(a.pv_shuffle(SimdFmt::kC, r::t0, r::a0, r::a1), AsmError);
  EXPECT_NO_THROW(a.pv_extract(SimdFmt::kB, r::t0, r::a0, 3));
  EXPECT_THROW(a.pv_extract(SimdFmt::kB, r::t0, r::a0, 4), AsmError);
  EXPECT_THROW(a.pv_extract(SimdFmt::kH, r::t0, r::a0, 2), AsmError);
  // finish() would throw later anyway; encode directly to check:
  isa::Instr in;
  in.op = isa::Mnemonic::kPvPackH;
  in.fmt = SimdFmt::kB;
  EXPECT_THROW(isa::encode(in), AsmError);
}

TEST(SimdElem, RoundTripThroughDecoder) {
  for (const auto fmt : {SimdFmt::kB, SimdFmt::kH}) {
    for (const auto op :
         {isa::Mnemonic::kPvElemExtract, isa::Mnemonic::kPvElemExtractu,
          isa::Mnemonic::kPvElemInsert}) {
      isa::Instr in;
      in.op = op;
      in.fmt = fmt;
      in.rd = 5;
      in.rs1 = 6;
      in.imm = (fmt == SimdFmt::kB) ? 3 : 1;
      const auto out = isa::decode(isa::encode(in), 0);
      EXPECT_EQ(out.op, in.op);
      EXPECT_EQ(out.imm, in.imm);
      EXPECT_EQ(out.fmt, in.fmt);
    }
  }
  // Decoder rejects lane >= lane count and sub-byte formats.
  const u32 bad_lane = isa::enc_r(isa::kOpPulpSimd, /*funct3 b=*/0,
                                  static_cast<u32>(isa::SimdFunct7::kElemExtract),
                                  5, 6, /*lane=*/4);
  EXPECT_THROW(isa::decode(bad_lane, 0), IllegalInstruction);
  const u32 bad_fmt = isa::enc_r(isa::kOpPulpSimd, /*funct3 n=*/4,
                                 static_cast<u32>(isa::SimdFunct7::kShuffle),
                                 5, 6, 7);
  EXPECT_THROW(isa::decode(bad_fmt, 0), IllegalInstruction);
}

TEST(ImmBranch, BeqimmBneimm) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, -3);
    a.li(r::s0, 0);
    auto t1 = a.new_label();
    a.p_beqimm(r::a0, -3, t1);   // taken
    a.ori(r::s0, r::s0, 1);
    a.bind(t1);
    auto t2 = a.new_label();
    a.p_beqimm(r::a0, 3, t2);    // not taken
    a.ori(r::s0, r::s0, 2);
    a.bind(t2);
    auto t3 = a.new_label();
    a.p_bneimm(r::a0, 15, t3);   // taken
    a.ori(r::s0, r::s0, 4);
    a.bind(t3);
    auto t4 = a.new_label();
    a.p_bneimm(r::a0, -3, t4);   // not taken
    a.ori(r::s0, r::s0, 8);
    a.bind(t4);
  });
  EXPECT_EQ(res.regs[r::s0], 2u | 8u);
  EXPECT_EQ(res.perf.taken_branches, 2u);
  EXPECT_EQ(res.perf.not_taken_branches, 2u);
}

TEST(ImmBranch, ImmediateRangeChecked) {
  xasm::Assembler a(0);
  auto l = a.new_label();
  EXPECT_THROW(a.p_beqimm(r::a0, 16, l), AsmError);
  EXPECT_THROW(a.p_bneimm(r::a0, -17, l), AsmError);
  EXPECT_NO_THROW(a.p_beqimm(r::a0, 15, l));
  EXPECT_NO_THROW(a.p_bneimm(r::a0, -16, l));
}

TEST(ImmBranch, SavesTheComparisonRegister) {
  // The point of p.bneimm: a counted loop without materializing the bound.
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    a.li(r::t0, 9);
    auto loop = a.here();
    a.addi(r::a0, r::a0, 2);
    a.addi(r::t0, r::t0, -1);
    a.p_bneimm(r::t0, 0, loop);
  });
  EXPECT_EQ(res.regs[r::a0], 18u);
}

}  // namespace
}  // namespace xpulp
