// obs::BankHeatmap: TCDM bank binning from the cluster access-observer
// stream. The load-bearing property is exact reconciliation — the
// heatmap's conflict and access totals must equal the BankArbiter's own
// counters, access for access — plus ring/window bookkeeping.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cluster/parallel_conv.hpp"
#include "kernels/conv_layer.hpp"
#include "obs/heatmap.hpp"

namespace xpulp::obs {
namespace {

using kernels::ConvVariant;

kernels::ConvLayerData small_layer(unsigned bits) {
  qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(bits);
  spec.in_h = spec.in_w = 6;
  spec.in_c = 16;
  spec.out_c = 8;
  return kernels::ConvLayerData::random(spec, 7);
}

TEST(BankHeatmap, TotalsMatchBankArbiterExactly) {
  const auto data = small_layer(4);
  cluster::ClusterConfig ccfg;
  ccfg.num_cores = 4;
  ccfg.core = sim::CoreConfig::extended();
  const u32 banks = 4 * ccfg.banks_per_core;

  BankHeatmap::Options opts;
  opts.window_cycles = 512;
  BankHeatmap hm(banks, 4, opts);

  const auto res = cluster::run_parallel_conv(
      data, ConvVariant::kXpulpNN_HwQ, ccfg,
      [&hm](cluster::Cluster& cl, const std::vector<kernels::ConvKernel>&) {
        cl.set_access_observer([&hm](int c, cycles_t cy, addr_t, addr_t a,
                                     unsigned, bool, unsigned stalls) {
          hm.observe(c, cy, a, stalls);
        });
      });

  EXPECT_EQ(res.output, data.golden());
  ASSERT_GT(res.stats.data_accesses, 0u);
  EXPECT_EQ(hm.total_accesses(), res.stats.data_accesses);
  EXPECT_EQ(hm.total_conflicts(), res.stats.bank_conflicts);

  // Retained per-window cells partition the totals (capacity was ample).
  EXPECT_EQ(hm.windows_dropped(), 0u);
  u64 cell_accesses = 0, cell_conflicts = 0, core_accesses = 0;
  for (size_t w = 0; w < hm.retained_windows(); ++w) {
    for (const BankCell& c : hm.window_banks(w)) {
      cell_accesses += c.accesses;
      cell_conflicts += c.conflicts;
    }
    for (u64 n : hm.window_core_accesses(w)) core_accesses += n;
  }
  EXPECT_EQ(cell_accesses, hm.total_accesses());
  EXPECT_EQ(cell_conflicts, hm.total_conflicts());
  EXPECT_EQ(core_accesses, hm.total_accesses());
}

TEST(BankHeatmap, BankMappingIsWordInterleaved) {
  BankHeatmap hm(16, 1);
  // Bank = (addr >> 2) % banks, the arbiter's mapping.
  hm.observe(0, 0, 0x0, 0);     // bank 0
  hm.observe(0, 0, 0x4, 0);     // bank 1
  hm.observe(0, 0, 0x7, 0);     // still bank 1 (same word)
  hm.observe(0, 0, 0x40, 1);    // bank 0, conflicted
  ASSERT_EQ(hm.retained_windows(), 1u);
  const auto& cells = hm.window_banks(0);
  EXPECT_EQ(cells[0].accesses, 2u);
  EXPECT_EQ(cells[0].conflicts, 1u);
  EXPECT_EQ(cells[1].accesses, 2u);
  EXPECT_EQ(cells[1].conflicts, 0u);
  EXPECT_EQ(hm.total_accesses(), 4u);
  EXPECT_EQ(hm.total_conflicts(), 1u);
}

TEST(BankHeatmap, RingDropsOldestWindows) {
  BankHeatmap::Options opts;
  opts.window_cycles = 100;
  opts.capacity = 2;
  BankHeatmap hm(4, 1, opts);
  for (u64 w = 0; w < 5; ++w) {
    hm.observe(0, w * 100 + 1, 0x4 * static_cast<addr_t>(w), 0);
  }
  EXPECT_EQ(hm.windows_recorded(), 5u);
  EXPECT_EQ(hm.windows_dropped(), 3u);
  ASSERT_EQ(hm.retained_windows(), 2u);
  EXPECT_EQ(hm.window_index(0), 3u);
  EXPECT_EQ(hm.window_index(1), 4u);
  // Grand totals still cover every access, including dropped windows.
  EXPECT_EQ(hm.total_accesses(), 5u);
}

TEST(BankHeatmap, CsvRowsSumToTotals) {
  BankHeatmap::Options opts;
  opts.window_cycles = 10;
  BankHeatmap hm(4, 2, opts);
  hm.observe(0, 1, 0x0, 0);
  hm.observe(1, 2, 0x4, 2);
  hm.observe(0, 15, 0x8, 0);
  hm.observe(1, 15, 0x8, 1);

  std::ostringstream os;
  hm.write_csv(os);
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "window,bank,accesses,conflicts");
  u64 accesses = 0, conflicts = 0;
  while (std::getline(is, line)) {
    u64 w = 0, b = 0, a = 0, c = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "%llu,%llu,%llu,%llu",
                          (unsigned long long*)&w, (unsigned long long*)&b,
                          (unsigned long long*)&a, (unsigned long long*)&c),
              4)
        << line;
    accesses += a;
    conflicts += c;
  }
  EXPECT_EQ(accesses, hm.total_accesses());
  EXPECT_EQ(conflicts, hm.total_conflicts());
}

TEST(BankHeatmap, TimelineCounterTracksCoverRetainedWindows) {
  BankHeatmap::Options opts;
  opts.window_cycles = 10;
  BankHeatmap hm(2, 1, opts);
  hm.observe(0, 5, 0x0, 0);
  hm.observe(0, 15, 0x4, 1);

  Timeline tl;
  hm.add_to_timeline(tl);
  // One accesses + one conflicts point per (bank, window) pair.
  EXPECT_EQ(tl.counters_recorded(), 2u * 2u * 2u);
}

}  // namespace
}  // namespace xpulp::obs
