// Compressed-instruction decoder tests: each supported RVC form is checked
// against its 32-bit expansion (encodings cross-checked with GNU as).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "isa/decoder.hpp"

namespace xpulp::isa {
namespace {

using M = Mnemonic;

TEST(Rvc, CAddi4Spn) {
  // c.addi4spn a0, sp, 16  ->  0x0808
  const Instr in = decode_compressed(0x0808, 0);
  EXPECT_EQ(in.op, M::kAddi);
  EXPECT_EQ(in.rd, 10);
  EXPECT_EQ(in.rs1, 2);
  EXPECT_EQ(in.imm, 16);
  EXPECT_EQ(in.size, 2u);
}

TEST(Rvc, CLwAndCSw) {
  // c.lw a0, 4(a1)  ->  0x41c8
  const Instr lw = decode_compressed(0x41c8, 0);
  EXPECT_EQ(lw.op, M::kLw);
  EXPECT_EQ(lw.rd, 10);
  EXPECT_EQ(lw.rs1, 11);
  EXPECT_EQ(lw.imm, 4);
  // c.sw a0, 4(a1)  ->  0xc1c8
  const Instr sw = decode_compressed(0xc1c8, 0);
  EXPECT_EQ(sw.op, M::kSw);
  EXPECT_EQ(sw.rs2, 10);
  EXPECT_EQ(sw.rs1, 11);
  EXPECT_EQ(sw.imm, 4);
}

TEST(Rvc, CAddiAndNop) {
  // c.addi a0, -1  ->  0x157d
  const Instr in = decode_compressed(0x157d, 0);
  EXPECT_EQ(in.op, M::kAddi);
  EXPECT_EQ(in.rd, 10);
  EXPECT_EQ(in.rs1, 10);
  EXPECT_EQ(in.imm, -1);
  // c.nop  ->  0x0001
  const Instr nop = decode_compressed(0x0001, 0);
  EXPECT_EQ(nop.op, M::kAddi);
  EXPECT_EQ(nop.rd, 0);
  EXPECT_EQ(nop.imm, 0);
}

TEST(Rvc, CLi) {
  // c.li a0, 17  ->  0x4545
  const Instr in = decode_compressed(0x4545, 0);
  EXPECT_EQ(in.op, M::kAddi);
  EXPECT_EQ(in.rd, 10);
  EXPECT_EQ(in.rs1, 0);
  EXPECT_EQ(in.imm, 17);
}

TEST(Rvc, CLuiAndAddi16Sp) {
  // c.lui a0, 0x1f  ->  0x657d
  const Instr lui = decode_compressed(0x657d, 0);
  EXPECT_EQ(lui.op, M::kLui);
  EXPECT_EQ(lui.rd, 10);
  EXPECT_EQ(lui.imm, 0x1f000);
  // c.addi16sp sp, -64  ->  0x7139
  const Instr sp = decode_compressed(0x7139, 0);
  EXPECT_EQ(sp.op, M::kAddi);
  EXPECT_EQ(sp.rd, 2);
  EXPECT_EQ(sp.rs1, 2);
  EXPECT_EQ(sp.imm, -64);
}

TEST(Rvc, ShiftsAndAndi) {
  // c.srli a0, 3  ->  0x810d
  const Instr srli = decode_compressed(0x810d, 0);
  EXPECT_EQ(srli.op, M::kSrli);
  EXPECT_EQ(srli.rd, 10);
  EXPECT_EQ(srli.imm, 3);
  // c.srai a0, 3  ->  0x850d
  const Instr srai = decode_compressed(0x850d, 0);
  EXPECT_EQ(srai.op, M::kSrai);
  EXPECT_EQ(srai.imm, 3);
  // c.andi a0, 15  ->  0x893d
  const Instr andi = decode_compressed(0x893d, 0);
  EXPECT_EQ(andi.op, M::kAndi);
  EXPECT_EQ(andi.imm, 15);
  // c.slli a0, 4  ->  0x0512
  const Instr slli = decode_compressed(0x0512, 0);
  EXPECT_EQ(slli.op, M::kSlli);
  EXPECT_EQ(slli.rd, 10);
  EXPECT_EQ(slli.imm, 4);
}

TEST(Rvc, RegisterRegisterGroup) {
  // c.sub a0, a1  ->  0x8d0d
  const Instr sub = decode_compressed(0x8d0d, 0);
  EXPECT_EQ(sub.op, M::kSub);
  EXPECT_EQ(sub.rd, 10);
  EXPECT_EQ(sub.rs1, 10);
  EXPECT_EQ(sub.rs2, 11);
  // c.xor a0, a1  ->  0x8d2d
  EXPECT_EQ(decode_compressed(0x8d2d, 0).op, M::kXor);
  // c.or a0, a1   ->  0x8d4d
  EXPECT_EQ(decode_compressed(0x8d4d, 0).op, M::kOr);
  // c.and a0, a1  ->  0x8d6d
  EXPECT_EQ(decode_compressed(0x8d6d, 0).op, M::kAnd);
}

TEST(Rvc, JumpsAndBranches) {
  // c.j +32  ->  0xa005
  const Instr j = decode_compressed(0xa005, 0);
  EXPECT_EQ(j.op, M::kJal);
  EXPECT_EQ(j.rd, 0);
  EXPECT_EQ(j.imm, 32);
  // c.jal +32 (RV32)  ->  0x2005
  const Instr jal = decode_compressed(0x2005, 0);
  EXPECT_EQ(jal.op, M::kJal);
  EXPECT_EQ(jal.rd, 1);
  EXPECT_EQ(jal.imm, 32);
  // c.beqz a0, +16  ->  0xc901
  const Instr beq = decode_compressed(0xc901, 0);
  EXPECT_EQ(beq.op, M::kBeq);
  EXPECT_EQ(beq.rs1, 10);
  EXPECT_EQ(beq.rs2, 0);
  EXPECT_EQ(beq.imm, 16);
  // c.bnez a0, +16  ->  0xe901
  const Instr bne = decode_compressed(0xe901, 0);
  EXPECT_EQ(bne.op, M::kBne);
  EXPECT_EQ(bne.imm, 16);
}

TEST(Rvc, Quadrant2MovesJumps) {
  // c.mv a0, a1  ->  0x852e
  const Instr mv = decode_compressed(0x852e, 0);
  EXPECT_EQ(mv.op, M::kAdd);
  EXPECT_EQ(mv.rd, 10);
  EXPECT_EQ(mv.rs1, 0);
  EXPECT_EQ(mv.rs2, 11);
  // c.add a0, a1  ->  0x952e
  const Instr add = decode_compressed(0x952e, 0);
  EXPECT_EQ(add.op, M::kAdd);
  EXPECT_EQ(add.rs1, 10);
  EXPECT_EQ(add.rs2, 11);
  // c.jr a0  ->  0x8502
  const Instr jr = decode_compressed(0x8502, 0);
  EXPECT_EQ(jr.op, M::kJalr);
  EXPECT_EQ(jr.rd, 0);
  EXPECT_EQ(jr.rs1, 10);
  // c.jalr a0  ->  0x9502
  const Instr jalr = decode_compressed(0x9502, 0);
  EXPECT_EQ(jalr.op, M::kJalr);
  EXPECT_EQ(jalr.rd, 1);
  // c.ebreak  ->  0x9002
  EXPECT_EQ(decode_compressed(0x9002, 0).op, M::kEbreak);
}

TEST(Rvc, LwspSwsp) {
  // c.lwsp a0, 8(sp)  ->  0x4522
  const Instr lwsp = decode_compressed(0x4522, 0);
  EXPECT_EQ(lwsp.op, M::kLw);
  EXPECT_EQ(lwsp.rd, 10);
  EXPECT_EQ(lwsp.rs1, 2);
  EXPECT_EQ(lwsp.imm, 8);
  // c.swsp a0, 8(sp)  ->  0xc42a
  const Instr swsp = decode_compressed(0xc42a, 0);
  EXPECT_EQ(swsp.op, M::kSw);
  EXPECT_EQ(swsp.rs2, 10);
  EXPECT_EQ(swsp.rs1, 2);
  EXPECT_EQ(swsp.imm, 8);
}

TEST(Rvc, IllegalForms) {
  EXPECT_THROW(decode_compressed(0x0000, 0), IllegalInstruction);
  // c.addi4spn with zero immediate is reserved.
  EXPECT_THROW(decode_compressed(0x0008, 0), IllegalInstruction);
  // c.lui with zero immediate is reserved.
  EXPECT_THROW(decode_compressed(0x6501, 0), IllegalInstruction);
}

TEST(Rvc, DispatchedThroughMainDecode) {
  // decode() must route 16-bit parcels to the compressed decoder.
  const Instr in = decode(0x4545, 0);  // c.li a0, 17
  EXPECT_EQ(in.op, M::kAddi);
  EXPECT_EQ(in.size, 2u);
  EXPECT_TRUE(is_compressed(0x4545));
  EXPECT_FALSE(is_compressed(0x00510093));
}

}  // namespace
}  // namespace xpulp::isa
