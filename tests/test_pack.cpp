// Sub-byte packing/unpacking round-trips and layout contracts.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "qnn/pack.hpp"
#include "sim/dotp_lanes.hpp"

namespace xpulp::qnn {
namespace {

TEST(Pack, PackedBytesArithmetic) {
  EXPECT_EQ(packed_bytes(8, 8), 8u);
  EXPECT_EQ(packed_bytes(8, 4), 4u);
  EXPECT_EQ(packed_bytes(8, 2), 2u);
  EXPECT_EQ(packed_bytes(7, 4), 4u);  // rounds up
  EXPECT_EQ(packed_bytes(1, 2), 1u);
  EXPECT_EQ(packed_bytes(0, 4), 0u);
}

TEST(Pack, LaneOrderIsLittleEndianWithinByte) {
  // Elements {1, 2, 3, 4} at 4 bits: byte0 = 0x21, byte1 = 0x43.
  const std::vector<i32> v{1, 2, 3, 4};
  const auto bytes = pack_values(v, 4);
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0x21);
  EXPECT_EQ(bytes[1], 0x43);
  // 2-bit: {1, 2, 3, 0} -> 0b00111001 = 0x39.
  const auto b2 = pack_values(std::vector<i32>{1, 2, 3, 0}, 2);
  EXPECT_EQ(b2[0], 0x39);
}

TEST(Pack, SignedValuesUseTwosComplement) {
  const std::vector<i32> v{-1, -8, 7, 0};
  const auto bytes = pack_values(v, 4);
  EXPECT_EQ(bytes[0], 0x8f);  // -1 -> 0xf, -8 -> 0x8
  EXPECT_EQ(bytes[1], 0x07);
  const auto back = unpack_values(bytes, 4, 4, /*is_signed=*/true);
  EXPECT_EQ(back, v);
}

class PackRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(PackRoundTrip, UnsignedRoundTrip) {
  const unsigned bits = GetParam();
  Rng rng(bits);
  std::vector<i32> v(257);
  for (auto& e : v) e = static_cast<i32>(rng.unsigned_bits(bits));
  const auto bytes = pack_values(v, bits);
  EXPECT_EQ(bytes.size(), packed_bytes(257, bits));
  EXPECT_EQ(unpack_values(bytes, 257, bits, false), v);
}

TEST_P(PackRoundTrip, SignedRoundTrip) {
  const unsigned bits = GetParam();
  Rng rng(bits + 100);
  std::vector<i32> v(64);
  for (auto& e : v) e = rng.signed_bits(bits);
  const auto bytes = pack_values(v, bits);
  EXPECT_EQ(unpack_values(bytes, 64, bits, true), v);
}

INSTANTIATE_TEST_SUITE_P(Widths, PackRoundTrip,
                         ::testing::Values(2u, 4u, 8u));

TEST(Pack, TensorRoundTrip) {
  Rng rng(5);
  Tensor t({3, 5, 8});
  for (int i = 0; i < t.elems(); ++i) {
    t.flat(i) = static_cast<i32>(rng.unsigned_bits(4));
  }
  const auto bytes = pack_tensor(t, 4);
  const Tensor back = unpack_tensor(bytes, t.shape(), 4, false);
  EXPECT_EQ(back, t);
}

TEST(Pack, FilterBankStrideIsWordAligned) {
  EXPECT_EQ(packed_filter_stride(288, 4), 144u);
  EXPECT_EQ(packed_filter_stride(288, 2), 72u);
  EXPECT_EQ(packed_filter_stride(288, 8), 288u);
  EXPECT_EQ(packed_filter_stride(9, 4), 8u);   // 5 bytes -> padded to 8
  EXPECT_EQ(packed_filter_stride(9, 8), 12u);  // 9 bytes -> 12
}

TEST(Pack, FilterBankLayout) {
  FilterBank f(3, {1, 1, 9});
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 9; ++j) f.flat(i, j) = (i == 1 && j == 0) ? -2 : j % 3;
  }
  const auto bytes = pack_filter_bank(f, 4);
  const u32 stride = packed_filter_stride(9, 4);
  ASSERT_EQ(bytes.size(), 3 * stride);
  // Filter 1 starts at its stride boundary; first nibble is -2 = 0xe.
  EXPECT_EQ(bytes[stride] & 0xf, 0xe);
  // Padding bytes between filters are zero (acts as zero weights).
  EXPECT_EQ(bytes[stride - 1], 0);
}

// ---- signedness x width audit matrix ----
// Every code of every width must survive pack -> unpack under both
// extensions: zero-extension reproduces the raw code, sign-extension
// reproduces the two's-complement value. Exhaustive, not sampled.

TEST(PackAudit, EveryCodeEveryWidthBothSignednesses) {
  for (const unsigned bits : {1u, 2u, 4u, 8u}) {
    const int codes = 1 << bits;
    std::vector<i32> raw(static_cast<size_t>(codes));
    for (int c = 0; c < codes; ++c) raw[static_cast<size_t>(c)] = c;
    const auto bytes = pack_values(raw, bits);

    const auto uns = unpack_values(bytes, codes, bits, /*is_signed=*/false);
    const auto sgn = unpack_values(bytes, codes, bits, /*is_signed=*/true);
    for (int c = 0; c < codes; ++c) {
      EXPECT_EQ(uns[static_cast<size_t>(c)], c) << "bits=" << bits;
      const i32 expect_signed = c >= codes / 2 ? c - codes : c;
      EXPECT_EQ(sgn[static_cast<size_t>(c)], expect_signed)
          << "bits=" << bits << " code=" << c;
    }

    // Negative values written as i32 must produce the same bytes as their
    // codes (masking is two's complement, not saturation).
    std::vector<i32> neg(static_cast<size_t>(codes));
    for (int c = 0; c < codes; ++c) {
      neg[static_cast<size_t>(c)] = c >= codes / 2 ? c - codes : c;
    }
    EXPECT_EQ(pack_values(neg, bits), bytes) << "bits=" << bits;
  }
}

// ---- grouped (mixed virtual-SIMD) packing ----

struct GroupedCase {
  unsigned wa, wb;  // activation width (group = 32/wa), weight width
};

class GroupedPack : public ::testing::TestWithParam<GroupedCase> {};

TEST_P(GroupedPack, RoundTripBothSignednesses) {
  const auto [wa, wb] = GetParam();
  const unsigned group = 32 / wa;
  Rng rng(wa * 10 + wb);
  for (const bool is_signed : {false, true}) {
    std::vector<i32> v(61);  // deliberately not a multiple of the group
    for (auto& e : v) {
      e = is_signed ? rng.signed_bits(wb)
                    : static_cast<i32>(rng.unsigned_bits(wb));
    }
    const auto bytes = pack_values_grouped(v, group, wb);
    EXPECT_EQ(bytes.size(), ((v.size() + group - 1) / group) * 4);
    EXPECT_EQ(unpack_values_grouped(bytes, 61, group, wb, is_signed), v);
  }
}

TEST_P(GroupedPack, UpperWordBitsAreZero) {
  const auto [wa, wb] = GetParam();
  const unsigned group = 32 / wa;
  std::vector<i32> v(static_cast<size_t>(group), -1);  // all-ones codes
  const auto bytes = pack_values_grouped(v, group, wb);
  ASSERT_EQ(bytes.size(), 4u);
  u32 word = 0;
  for (unsigned i = 0; i < 4; ++i) word |= static_cast<u32>(bytes[i]) << (8 * i);
  EXPECT_EQ(word, low_mask(group * wb)) << "wa=" << wa << " wb=" << wb;
}

TEST_P(GroupedPack, WordsFeedTheMixedDotProductLaneExact) {
  // The whole point of the grouped layout: word i of a grouped weight
  // stream against word i of a flat activation stream must give the mixed
  // dot product the scalar answer.
  const auto [wa, wb] = GetParam();
  const unsigned group = 32 / wa;
  Rng rng(wa * 100 + wb);
  std::vector<i32> acts(static_cast<size_t>(group) * 3);
  std::vector<i32> wts(acts.size());
  for (auto& e : acts) e = static_cast<i32>(rng.unsigned_bits(wa));
  for (auto& e : wts) e = rng.signed_bits(wb);

  const auto a_bytes = pack_values(acts, wa);
  const auto w_bytes = pack_values_grouped(wts, group, wb);
  i32 acc = 7;  // nonzero start: accumulate semantics
  i32 scalar = 7;
  for (unsigned w = 0; w < 3; ++w) {
    u32 aw = 0, ww = 0;
    for (unsigned i = 0; i < 4; ++i) {
      aw |= static_cast<u32>(a_bytes[w * 4 + i]) << (8 * i);
      ww |= static_cast<u32>(w_bytes[w * 4 + i]) << (8 * i);
    }
    const u32 sel = wa == 8 ? (wb == 4 ? 0u : 1u) : 2u;
    acc = sim::dotp_lanes_mixed_sel(sel, aw, ww, static_cast<u32>(acc),
                                    /*sa=*/false, /*sb=*/true);
    for (unsigned i = 0; i < group; ++i) {
      scalar += acts[w * group + i] * wts[w * group + i];
    }
    EXPECT_EQ(acc, scalar) << "wa=" << wa << " wb=" << wb << " word=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(MpcPairs, GroupedPack,
                         ::testing::Values(GroupedCase{8, 4}, GroupedCase{8, 2},
                                           GroupedCase{4, 2}),
                         [](const ::testing::TestParamInfo<GroupedCase>& info) {
                           return std::to_string(info.param.wa) + "x" +
                                  std::to_string(info.param.wb);
                         });

TEST(GroupedPackLayout, FilterStrideAndBankLayout) {
  // 8x4: 4 weights per word -> 9 elems = 3 words = 12 bytes.
  EXPECT_EQ(packed_filter_stride_grouped(9, 8), 12u);
  // 4x2: 8 weights per word -> 9 elems = 2 words = 8 bytes.
  EXPECT_EQ(packed_filter_stride_grouped(9, 4), 8u);
  EXPECT_EQ(packed_filter_stride_grouped(288, 8), 288u);

  FilterBank f(2, {1, 1, 9});
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 9; ++j) f.flat(i, j) = (i == 1 && j == 0) ? -2 : 1;
  }
  const auto bytes = pack_filter_bank_grouped(f, 8, 4);
  const u32 stride = packed_filter_stride_grouped(9, 8);
  ASSERT_EQ(bytes.size(), 2 * stride);
  // Filter 1 starts on its word boundary; first nibble is -2 = 0xe.
  EXPECT_EQ(bytes[stride] & 0xf, 0xe);
  // Group padding (lanes past the filter tail) is zero.
  EXPECT_EQ(bytes[stride - 1], 0);
}

}  // namespace
}  // namespace xpulp::qnn
