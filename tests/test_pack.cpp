// Sub-byte packing/unpacking round-trips and layout contracts.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "qnn/pack.hpp"

namespace xpulp::qnn {
namespace {

TEST(Pack, PackedBytesArithmetic) {
  EXPECT_EQ(packed_bytes(8, 8), 8u);
  EXPECT_EQ(packed_bytes(8, 4), 4u);
  EXPECT_EQ(packed_bytes(8, 2), 2u);
  EXPECT_EQ(packed_bytes(7, 4), 4u);  // rounds up
  EXPECT_EQ(packed_bytes(1, 2), 1u);
  EXPECT_EQ(packed_bytes(0, 4), 0u);
}

TEST(Pack, LaneOrderIsLittleEndianWithinByte) {
  // Elements {1, 2, 3, 4} at 4 bits: byte0 = 0x21, byte1 = 0x43.
  const std::vector<i32> v{1, 2, 3, 4};
  const auto bytes = pack_values(v, 4);
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0x21);
  EXPECT_EQ(bytes[1], 0x43);
  // 2-bit: {1, 2, 3, 0} -> 0b00111001 = 0x39.
  const auto b2 = pack_values(std::vector<i32>{1, 2, 3, 0}, 2);
  EXPECT_EQ(b2[0], 0x39);
}

TEST(Pack, SignedValuesUseTwosComplement) {
  const std::vector<i32> v{-1, -8, 7, 0};
  const auto bytes = pack_values(v, 4);
  EXPECT_EQ(bytes[0], 0x8f);  // -1 -> 0xf, -8 -> 0x8
  EXPECT_EQ(bytes[1], 0x07);
  const auto back = unpack_values(bytes, 4, 4, /*is_signed=*/true);
  EXPECT_EQ(back, v);
}

class PackRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(PackRoundTrip, UnsignedRoundTrip) {
  const unsigned bits = GetParam();
  Rng rng(bits);
  std::vector<i32> v(257);
  for (auto& e : v) e = static_cast<i32>(rng.unsigned_bits(bits));
  const auto bytes = pack_values(v, bits);
  EXPECT_EQ(bytes.size(), packed_bytes(257, bits));
  EXPECT_EQ(unpack_values(bytes, 257, bits, false), v);
}

TEST_P(PackRoundTrip, SignedRoundTrip) {
  const unsigned bits = GetParam();
  Rng rng(bits + 100);
  std::vector<i32> v(64);
  for (auto& e : v) e = rng.signed_bits(bits);
  const auto bytes = pack_values(v, bits);
  EXPECT_EQ(unpack_values(bytes, 64, bits, true), v);
}

INSTANTIATE_TEST_SUITE_P(Widths, PackRoundTrip,
                         ::testing::Values(2u, 4u, 8u));

TEST(Pack, TensorRoundTrip) {
  Rng rng(5);
  Tensor t({3, 5, 8});
  for (int i = 0; i < t.elems(); ++i) {
    t.flat(i) = static_cast<i32>(rng.unsigned_bits(4));
  }
  const auto bytes = pack_tensor(t, 4);
  const Tensor back = unpack_tensor(bytes, t.shape(), 4, false);
  EXPECT_EQ(back, t);
}

TEST(Pack, FilterBankStrideIsWordAligned) {
  EXPECT_EQ(packed_filter_stride(288, 4), 144u);
  EXPECT_EQ(packed_filter_stride(288, 2), 72u);
  EXPECT_EQ(packed_filter_stride(288, 8), 288u);
  EXPECT_EQ(packed_filter_stride(9, 4), 8u);   // 5 bytes -> padded to 8
  EXPECT_EQ(packed_filter_stride(9, 8), 12u);  // 9 bytes -> 12
}

TEST(Pack, FilterBankLayout) {
  FilterBank f(3, {1, 1, 9});
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 9; ++j) f.flat(i, j) = (i == 1 && j == 0) ? -2 : j % 3;
  }
  const auto bytes = pack_filter_bank(f, 4);
  const u32 stride = packed_filter_stride(9, 4);
  ASSERT_EQ(bytes.size(), 3 * stride);
  // Filter 1 starts at its stride boundary; first nibble is -2 = 0xe.
  EXPECT_EQ(bytes[stride] & 0xf, 0xe);
  // Padding bytes between filters are zero (acts as zero weights).
  EXPECT_EQ(bytes[stride - 1], 0);
}

}  // namespace
}  // namespace xpulp::qnn
