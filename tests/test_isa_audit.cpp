// Encoding-space audit as a test-suite gate: the declarative ISA table
// must be pairwise non-overlapping and round-trip exact against the real
// encoder/decoder/disassembler, the full 16-bit compressed space must
// decode or reject cleanly, and every generated illegal encoding must trap
// both in the decoder and on a live core.
#include <gtest/gtest.h>

#include "analysis/isa_audit.hpp"
#include "common/error.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/isa_table.hpp"
#include "mem/memory.hpp"
#include "sim/core.hpp"
#include "xasm/text_asm.hpp"

namespace xpulp::analysis {
namespace {

void expect_ok(const AuditResult& r) {
  for (const std::string& f : r.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(r.ok());
}

TEST(IsaAudit, TableEntriesPairwiseDisjoint) {
  const AuditResult r = audit_table_disjoint();
  expect_ok(r);
  // ~240 entries -> tens of thousands of pairs actually examined.
  EXPECT_GT(r.checked, 20'000u);
}

TEST(IsaAudit, EverySampleRoundTripsBitIdentically) {
  const AuditResult r = audit_table_roundtrip();
  expect_ok(r);
  EXPECT_GT(r.checked, 500u);  // >= 3 operand-varied samples per entry
}

TEST(IsaAudit, CompressedSpaceSweptExhaustively) {
  const AuditResult r = audit_compressed_space();
  expect_ok(r);
  // All 16-bit parcels with a compressed quadrant: 3 * 2^14.
  EXPECT_EQ(r.checked, 3u * 16384u);
}

TEST(IsaAudit, IllegalBankRejectedByDecoder) {
  const AuditResult r = audit_illegal_bank();
  expect_ok(r);
  EXPECT_GT(r.checked, 30u);
}

TEST(IsaAudit, CombinedAuditPasses) {
  const AuditResult r = audit_isa_encoding_space();
  expect_ok(r);
  EXPECT_GT(r.checked, 60'000u);
}

TEST(IsaAudit, EveryTableEntryHasLookup) {
  for (const isa::IsaTableEntry& e : isa::isa_table()) {
    const isa::IsaTableEntry* found = isa::isa_table_lookup(e.op, e.fmt);
    ASSERT_NE(found, nullptr) << isa::mnemonic_name(e.op);
    EXPECT_EQ(found->mask, e.mask);
    EXPECT_EQ(found->match, e.match);
  }
}

// Negative-decode bank on a live core: each generated illegal word must
// raise IllegalInstruction when fetched and executed, not just when fed to
// the decoder in isolation.
TEST(IsaAudit, IllegalBankTrapsOnLiveCore) {
  mem::Memory mem(64 * 1024);
  for (const u32 w : illegal_encoding_bank()) {
    mem.store_u32(0, w);
    mem.store_u32(4, 0x00000073);  // ecall, never reached
    sim::Core core(mem, sim::CoreConfig::extended());
    core.reset(0);
    EXPECT_THROW(core.run(2), IllegalInstruction) << std::hex << w;
  }
}

TEST(IsaAudit, IllegalCompressedBankRejected) {
  for (const u16 w : illegal_compressed_bank()) {
    ASSERT_TRUE(isa::is_compressed(w)) << std::hex << w;
    EXPECT_THROW(isa::decode_compressed(w, 0), IllegalInstruction)
        << std::hex << w;
  }
}

// Property over the whole table: encoder -> decoder -> disassembler ->
// text assembler is the identity on canonical words, for every entry whose
// textual form the front end covers (control flow and CSR forms use
// labels/absolute addresses and are exercised by test_text_asm instead).
TEST(IsaAudit, TableSamplesSurviveTextAssemblerRoundTrip) {
  using M = isa::Mnemonic;
  using S = isa::EncShape;
  int checked = 0;
  for (const isa::IsaTableEntry& e : isa::isa_table()) {
    switch (e.shape) {
      case S::kJ: case S::kB: case S::kBImm5:
      case S::kHwBound: case S::kHwCount: case S::kHwCounti:
      case S::kHwSetup: case S::kHwSetupi:
      case S::kCsr: case S::kCsrImm:
      case S::kU:
        continue;  // label/address/CSR-name operands
      default:
        break;
    }
    switch (e.op) {
      case M::kJalr: case M::kFence: case M::kMulhsu:
      // Register-addressed memory forms have no textual syntax yet.
      case M::kPLbPostReg: case M::kPLhPostReg: case M::kPLwPostReg:
      case M::kPLbuPostReg: case M::kPLhuPostReg:
      case M::kPLbRegReg: case M::kPLhRegReg: case M::kPLwRegReg:
      case M::kPLbuRegReg: case M::kPLhuRegReg:
      case M::kPSbPostReg: case M::kPShPostReg: case M::kPSwPostReg:
      case M::kPSbRegReg: case M::kPShRegReg: case M::kPSwRegReg:
        continue;
      default:
        break;
    }
    for (const isa::Instr& sample : isa::canonical_samples(e)) {
      const u32 w = isa::encode(sample);
      const isa::Instr in = isa::decode(w, 0);
      const std::string text = isa::disassemble(in, 0);
      SCOPED_TRACE(text);
      xasm::Program p(0, {});
      ASSERT_NO_THROW(p = xasm::assemble_text(text + "\n"));
      ASSERT_EQ(p.size_words(), 1u);
      EXPECT_EQ(p.words()[0], w);
      ++checked;
    }
  }
  EXPECT_GT(checked, 300);
}

}  // namespace
}  // namespace xpulp::analysis
