// xlint integration with the kernel generators and the simulator:
//   - every generated paper kernel (conv/pool/linear, both ISAs) must
//     analyze clean;
//   - the opt-in pre-run gate lets clean programs run and rejects broken
//     images at reset time;
//   - regression: ConvGenOptions::use_hwloops=false must produce a kernel
//     with zero hardware-loop instructions (the im2col helpers used to
//     emit lp.setupi unconditionally; the analyzer caught it).
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "analysis/kernel_sweep.hpp"
#include "isa/decoder.hpp"
#include "kernels/conv_layer.hpp"
#include "mem/memory.hpp"
#include "sim/core.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::analysis {
namespace {

namespace r = xasm::reg;

TEST(XlintKernels, AllGeneratedPaperKernelsAnalyzeClean) {
  const auto checks = analyze_paper_kernels();
  ASSERT_GE(checks.size(), 20u);
  bool any_hwloops = false;
  for (const KernelCheck& c : checks) {
    EXPECT_TRUE(c.report.clean()) << c.name << ":\n" << c.report.to_string();
    EXPECT_GT(c.report.instr_count, 0u) << c.name;
    any_hwloops |= c.report.hwloop_count > 0;
  }
  EXPECT_TRUE(any_hwloops);  // the matrix includes hwloop kernels
}

TEST(XlintKernels, PreRunGateAcceptsCleanProgram) {
  xasm::Assembler a(0);
  a.li(r::a0, 0);
  const auto end = a.new_label();
  a.lp_setupi(0, 5, end);
  a.addi(r::a0, r::a0, 2);
  a.addi(r::a0, r::a0, 1);
  a.bind(end);
  a.ecall();
  const xasm::Program prog = a.finish();

  mem::Memory mem(64 * 1024);
  prog.load(mem);
  sim::Core core(mem, sim::CoreConfig::extended());
  core.set_pre_run_gate(make_pre_run_gate({}));
  ASSERT_NO_THROW(core.reset(prog.entry(), prog.size_bytes()));
  EXPECT_EQ(core.run(), sim::HaltReason::kEcall);
  EXPECT_EQ(core.reg(r::a0), 15u);
}

TEST(XlintKernels, PreRunGateRejectsBrokenProgram) {
  xasm::Assembler a(0);
  a.add(r::a0, r::a1, r::a2);  // a1/a2 never initialized
  a.ecall();
  const xasm::Program prog = a.finish();

  mem::Memory mem(64 * 1024);
  prog.load(mem);
  sim::Core core(mem, sim::CoreConfig::extended());
  core.set_pre_run_gate(make_pre_run_gate({}));
  try {
    core.reset(prog.entry(), prog.size_bytes());
    FAIL() << "gate did not reject the uninitialized read";
  } catch (const AnalysisError& e) {
    EXPECT_GE(e.report().count(DiagKind::kUninitRead), 1u);
    EXPECT_NE(std::string(e.what()).find("pre-run analysis failed"),
              std::string::npos);
  }
}

TEST(XlintKernels, GateIsOptIn) {
  // Without a registered gate (or without a known code extent) reset must
  // behave exactly as before.
  xasm::Assembler a(0);
  a.add(r::a0, r::a1, r::a2);
  a.ecall();
  const xasm::Program prog = a.finish();

  mem::Memory mem(64 * 1024);
  prog.load(mem);
  sim::Core no_gate(mem, sim::CoreConfig::extended());
  ASSERT_NO_THROW(no_gate.reset(prog.entry(), prog.size_bytes()));

  sim::Core gated(mem, sim::CoreConfig::extended());
  gated.set_pre_run_gate(make_pre_run_gate({}));
  ASSERT_NO_THROW(gated.reset(prog.entry()));  // no code_end: gate skipped
}

TEST(XlintKernels, GateOptionsMirrorCoreConfig) {
  // A baseline-ISA gate must reject an XpulpNN kernel image.
  xasm::Assembler a(0);
  a.li(r::a0, 1);
  a.li(r::a1, 2);
  a.li(r::a2, 0);
  a.pv_sdotsp(isa::SimdFmt::kN, r::a2, r::a0, r::a1);
  a.ecall();
  const xasm::Program prog = a.finish();

  sim::CoreConfig base_cfg;  // defaults: no Xpulp extensions
  base_cfg.xpulpv2 = false;
  base_cfg.xpulpnn = false;
  base_cfg.hwloops = false;
  mem::Memory mem(64 * 1024);
  prog.load(mem);
  sim::Core core(mem, sim::CoreConfig::extended());
  core.set_pre_run_gate(
      make_pre_run_gate(AnalyzerOptions::for_core(base_cfg)));
  try {
    core.reset(prog.entry(), prog.size_bytes());
    FAIL() << "gate accepted an XpulpNN op for a baseline core";
  } catch (const AnalysisError& e) {
    EXPECT_GE(e.report().count(DiagKind::kMissingIsaFeature), 1u);
  }
}

// Regression for the bug the kernel sweep surfaced: with use_hwloops=false
// the im2col helpers (zero-fill / copy / unpack) still emitted lp.setupi.
TEST(XlintKernels, NoHwloopOptionEmitsNoHwloopInstructions) {
  qnn::ConvSpec spec;
  spec.in_h = spec.in_w = 6;
  spec.in_c = 16;
  spec.out_c = 8;
  spec.k_h = spec.k_w = 3;
  spec.pad = 1;
  spec.stride = 1;
  spec.in_bits = spec.w_bits = spec.out_bits = 4;

  auto count_hwloop_ops = [](const xasm::Program& p) {
    size_t n = 0;
    for (u32 i = 0; i < p.size_words(); ++i) {
      const isa::Instr in = isa::decode(p.words()[i], p.base() + i * 4);
      switch (in.op) {
        case isa::Mnemonic::kLpStarti:
        case isa::Mnemonic::kLpEndi:
        case isa::Mnemonic::kLpCount:
        case isa::Mnemonic::kLpCounti:
        case isa::Mnemonic::kLpSetup:
        case isa::Mnemonic::kLpSetupi:
          ++n;
          break;
        default:
          break;
      }
    }
    return n;
  };

  kernels::ConvGenOptions no_loops;
  no_loops.use_hwloops = false;
  const auto ablated = kernels::generate_conv_kernel(
      spec, kernels::ConvVariant::kXpulpNN_HwQ, 0x40000, no_loops);
  EXPECT_EQ(count_hwloop_ops(ablated.program), 0u);

  // Control: the default generator does use hardware loops here.
  const auto normal = kernels::generate_conv_kernel(
      spec, kernels::ConvVariant::kXpulpNN_HwQ, 0x40000);
  EXPECT_GT(count_hwloop_ops(normal.program), 0u);

  // And the ablated kernel still verifies clean for a hwloop-less core.
  AnalyzerOptions opt;
  opt.hwloops = false;
  opt.assume_initialized = 1u | (1u << r::sp);
  const auto rep = ProgramAnalyzer(opt).analyze(ablated.program);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

}  // namespace
}  // namespace xpulp::analysis
