// Cross-platform agreement property: the same quantized layer (same packed
// tensors, same thresholds) must produce the *identical* output on every
// execution path in the repository -- extended core (hw and sw quant),
// baseline RI5CY, Cortex-M4, Cortex-M7, the cluster, and the host golden
// model. This is the strongest end-to-end invariant we have: it crosses
// two ISAs, three quantization implementations, and five timing models.
#include <gtest/gtest.h>

#include "armv7e/cmsis_conv.hpp"
#include "cluster/parallel_conv.hpp"
#include "kernels/conv_layer.hpp"

namespace xpulp {
namespace {

using kernels::ConvLayerData;
using kernels::ConvVariant;

struct Case {
  unsigned bits;
  int in_hw, in_c, out_c;
  u64 seed;
};

class CrossPlatform : public ::testing::TestWithParam<Case> {};

TEST_P(CrossPlatform, AllPlatformsAgreeWithGolden) {
  const auto [bits, in_hw, in_c, out_c, seed] = GetParam();
  qnn::ConvSpec spec;
  spec.in_h = spec.in_w = in_hw;
  spec.in_c = in_c;
  spec.out_c = out_c;
  spec.in_bits = spec.w_bits = spec.out_bits = bits;
  const auto data = ConvLayerData::random(spec, seed);
  const auto gold = data.golden();

  auto expect_same = [&](const qnn::Tensor& t, const char* who) {
    ASSERT_EQ(t.shape(), gold.shape()) << who;
    for (int i = 0; i < gold.elems(); ++i) {
      ASSERT_EQ(t.flat(i), gold.flat(i)) << who << " elem " << i;
    }
  };

  // RISC-V extended core.
  const ConvVariant ext_v = (bits == 8) ? ConvVariant::kXpulpV2_8b
                                        : ConvVariant::kXpulpNN_HwQ;
  expect_same(
      kernels::run_conv_layer(data, ext_v, sim::CoreConfig::extended()).output,
      "xpulpnn");
  if (bits != 8) {
    expect_same(kernels::run_conv_layer(data, ConvVariant::kXpulpNN_SwQ,
                                        sim::CoreConfig::extended())
                    .output,
                "xpulpnn-swq");
  }

  // Baseline RI5CY.
  const ConvVariant base_v = (bits == 8) ? ConvVariant::kXpulpV2_8b
                                         : ConvVariant::kXpulpV2_Sub;
  expect_same(
      kernels::run_conv_layer(data, base_v, sim::CoreConfig::ri5cy()).output,
      "ri5cy");

  // ARM models.
  expect_same(armv7e::run_conv_layer_arm(data, armv7e::ArmModel::kCortexM4)
                  .output,
              "cortex-m4");
  expect_same(armv7e::run_conv_layer_arm(data, armv7e::ArmModel::kCortexM7)
                  .output,
              "cortex-m7");

  // 4-core cluster.
  cluster::ClusterConfig ccfg;
  ccfg.num_cores = 4;
  expect_same(cluster::run_parallel_conv(data, ext_v, ccfg).output, "cluster");
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, CrossPlatform,
    ::testing::Values(Case{8, 6, 16, 8, 1}, Case{8, 6, 16, 8, 2},
                      Case{4, 6, 16, 8, 3}, Case{4, 6, 16, 8, 4},
                      Case{4, 8, 32, 4, 5}, Case{2, 6, 16, 8, 6},
                      Case{2, 6, 16, 8, 7}, Case{2, 8, 32, 4, 8}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "b" + std::to_string(info.param.bits) + "_hw" +
             std::to_string(info.param.in_hw) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace xpulp
