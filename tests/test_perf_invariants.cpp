// PerfCounters self-consistency: on any workload the cycle counter must
// decompose exactly into instructions + the per-cause stall counters, and
// the instruction counter into the per-class counters. Checked across ISA
// levels (RV32IM GP code, XpulpV2 8-bit conv, XpulpNN sub-byte conv) on
// both dispatch paths, so a counter forgotten by a new handler fails here
// rather than silently skewing benches.
#include <gtest/gtest.h>

#include "kernels/conv_layer.hpp"
#include "kernels/gp_workload.hpp"
#include "sim/core.hpp"

namespace xpulp {
namespace {

using kernels::ConvVariant;
using qnn::ConvSpec;

ConvSpec spec(unsigned bits, int h, int w, int cin, int cout) {
  ConvSpec s;
  s.in_h = h;
  s.in_w = w;
  s.in_c = cin;
  s.out_c = cout;
  s.in_bits = s.w_bits = s.out_bits = bits;
  return s;
}

void expect_consistent(const sim::PerfCounters& p, const std::string& what) {
  const std::string v = sim::perf_invariant_violation(p);
  EXPECT_TRUE(v.empty()) << what << ": " << v;
  EXPECT_EQ(p.cycles, p.instructions + sim::perf_stall_cycles(p)) << what;
  EXPECT_EQ(p.instructions, sim::perf_class_ops(p)) << what;
}

sim::CoreConfig with_dispatch(sim::CoreConfig cfg, bool reference) {
  cfg.reference_dispatch = reference;
  return cfg;
}

class PerfInvariants : public ::testing::TestWithParam<bool> {};

TEST_P(PerfInvariants, Rv32imGpWorkload) {
  // The GP workload is pure RV32IM code (no SIMD, no hwloops taken).
  const auto w = kernels::make_gp_workload();
  const auto res = kernels::run_gp_workload(
      w, with_dispatch(sim::CoreConfig::ri5cy(), GetParam()));
  EXPECT_EQ(res.checksum, w.expected_checksum);
  expect_consistent(res.perf, "gp/rv32im");
}

TEST_P(PerfInvariants, XpulpV2Conv8b) {
  const auto s = spec(8, 6, 6, 8, 4);
  const auto data = kernels::ConvLayerData::random(s, 7);
  const auto res = kernels::run_conv_layer(
      data, ConvVariant::kXpulpV2_8b,
      with_dispatch(sim::CoreConfig::ri5cy(), GetParam()));
  EXPECT_EQ(res.output, data.golden());
  expect_consistent(res.perf, "conv8b/xpulpv2");
}

TEST_P(PerfInvariants, XpulpV2SubByteConv) {
  // Software sub-byte unpacking kernel: heavy on extract/insert ALU ops.
  const auto s = spec(4, 6, 6, 16, 8);
  const auto data = kernels::ConvLayerData::random(s, 7);
  const auto res = kernels::run_conv_layer(
      data, ConvVariant::kXpulpV2_Sub,
      with_dispatch(sim::CoreConfig::ri5cy(), GetParam()));
  EXPECT_EQ(res.output, data.golden());
  expect_consistent(res.perf, "conv4b/xpulpv2-sub");
}

TEST_P(PerfInvariants, XpulpNNConv4b) {
  // Exercises nibble dotp, pv.qnt multi-cycle stalls and hardware loops.
  const auto s = spec(4, 6, 6, 16, 8);
  const auto data = kernels::ConvLayerData::random(s, 7);
  const auto res = kernels::run_conv_layer(
      data, ConvVariant::kXpulpNN_HwQ,
      with_dispatch(sim::CoreConfig::extended(), GetParam()));
  EXPECT_EQ(res.output, data.golden());
  EXPECT_GT(res.perf.qnt_ops, 0u);
  EXPECT_GT(res.perf.qnt_stall_cycles, 0u);
  expect_consistent(res.perf, "conv4b/xpulpnn-hwq");
}

TEST_P(PerfInvariants, XpulpNNConv2b) {
  const auto s = spec(2, 6, 6, 16, 8);
  const auto data = kernels::ConvLayerData::random(s, 7);
  const auto res = kernels::run_conv_layer(
      data, ConvVariant::kXpulpNN_SwQ,
      with_dispatch(sim::CoreConfig::extended(), GetParam()));
  EXPECT_EQ(res.output, data.golden());
  expect_consistent(res.perf, "conv2b/xpulpnn-swq");
}

INSTANTIATE_TEST_SUITE_P(Dispatch, PerfInvariants, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "reference" : "fast";
                         });

TEST(PerfInvariantsNegative, CorruptedCountersAreReported) {
  const auto w = kernels::make_gp_workload();
  auto res = kernels::run_gp_workload(w, sim::CoreConfig::extended());

  sim::PerfCounters p = res.perf;
  p.cycles += 1;  // phantom cycle no stall cause explains
  EXPECT_NE(sim::perf_invariant_violation(p).find("cycles"),
            std::string::npos);

  p = res.perf;
  p.loads += 3;  // class sum no longer matches the instruction count
  EXPECT_FALSE(sim::perf_invariant_violation(p).empty());

  p = res.perf;
  p.mac_ops = p.mul_ops + p.scalar_alu_ops + 1;  // not a subset any more
  EXPECT_FALSE(sim::perf_invariant_violation(p).empty());
}

}  // namespace
}  // namespace xpulp
