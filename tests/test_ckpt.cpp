// Checkpoint container format: capture/serialize/deserialize/apply
// roundtrips, and rejection of every class of malformed image (bad magic,
// bad version, truncation, checksum mismatch, section overruns, target
// mismatches on apply).
#include <gtest/gtest.h>

#include <cstring>

#include "ckpt/snapshot.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::ckpt {
namespace {

namespace r = xasm::reg;

xasm::Program counting_program() {
  xasm::Assembler a(0);
  a.li(r::t0, 4000);
  a.li(r::s0, 0x8000);
  auto loop = a.here();
  a.sw(r::t0, r::s0, 0);
  a.lw(r::a0, r::s0, 0);
  a.addi(r::t0, r::t0, -1);
  a.bne(r::t0, r::zero, loop);
  a.ecall();
  return a.finish();
}

/// A core stepped partway into the counting loop.
struct Fixture {
  mem::Memory mem{64 * 1024};
  sim::Core core{mem, sim::CoreConfig::extended()};

  explicit Fixture(int steps = 500) {
    const xasm::Program prog = counting_program();
    prog.load(mem);
    core.reset(prog.entry(), prog.base() + prog.size_bytes());
    for (int i = 0; i < steps && !core.halted(); ++i) core.step();
  }
};

TEST(Ckpt, Crc32KnownVector) {
  // The standard CRC-32 check value.
  const char* s = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const u8*>(s), 9}), 0xcbf43926u);
}

TEST(Ckpt, SerializeDeserializeRoundtrip) {
  Fixture fx;
  const Snapshot snap = capture(fx.core, fx.mem);
  const std::vector<u8> bytes = serialize(snap);

  const Snapshot back = deserialize(bytes);
  ASSERT_EQ(back.cores.size(), 1u);
  EXPECT_FALSE(back.is_cluster());
  EXPECT_EQ(back.cores[0].pc, snap.cores[0].pc);
  EXPECT_EQ(back.cores[0].regs, snap.cores[0].regs);
  EXPECT_EQ(back.cores[0].perf.cycles, snap.cores[0].perf.cycles);
  EXPECT_EQ(back.cores[0].perf.instructions, snap.cores[0].perf.instructions);
  EXPECT_EQ(back.mem.bytes, snap.mem.bytes);
  EXPECT_EQ(back.mem.stats.loads, snap.mem.stats.loads);
  EXPECT_EQ(back.mem.stats.stores, snap.mem.stats.stores);

  // Re-serializing the parsed snapshot reproduces the image bit-for-bit.
  EXPECT_EQ(serialize(back), bytes);
}

TEST(Ckpt, ApplyRestoresExactState) {
  Fixture fx;
  const Snapshot snap = capture(fx.core, fx.mem);
  const u64 cycles_at_ckpt = fx.core.perf().cycles;

  // Run further, then restore through the full binary path.
  for (int i = 0; i < 300; ++i) fx.core.step();
  EXPECT_NE(fx.core.perf().cycles, cycles_at_ckpt);

  const Snapshot back = deserialize(serialize(snap));
  apply(back, fx.core, fx.mem);
  EXPECT_EQ(fx.core.perf().cycles, cycles_at_ckpt);
  EXPECT_EQ(fx.core.pc(), snap.cores[0].pc);
  EXPECT_EQ(fx.core.reg(5), snap.cores[0].regs[5]);  // t0 loop counter
}

TEST(Ckpt, RejectsBadMagic) {
  Fixture fx;
  std::vector<u8> bytes = serialize(capture(fx.core, fx.mem));
  bytes[0] ^= 0xff;
  // Checksum catches it first unless fixed up; both paths must throw.
  EXPECT_THROW(deserialize(bytes), CkptError);
  // Fix the CRC so only the magic is wrong.
  const u32 crc = crc32({bytes.data(), bytes.size() - 4});
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
  EXPECT_THROW(
      {
        try {
          deserialize(bytes);
        } catch (const CkptError& e) {
          EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
          throw;
        }
      },
      CkptError);
}

TEST(Ckpt, RejectsUnsupportedVersion) {
  Fixture fx;
  std::vector<u8> bytes = serialize(capture(fx.core, fx.mem));
  const u16 bad_version = kFormatVersion + 7;
  std::memcpy(bytes.data() + 4, &bad_version, 2);
  const u32 crc = crc32({bytes.data(), bytes.size() - 4});
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
  EXPECT_THROW(
      {
        try {
          deserialize(bytes);
        } catch (const CkptError& e) {
          EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
          throw;
        }
      },
      CkptError);
}

TEST(Ckpt, RejectsCorruptionAnywhere) {
  Fixture fx;
  const std::vector<u8> good = serialize(capture(fx.core, fx.mem));
  // Flip one byte at a spread of offsets; the CRC trailer must catch every
  // one of them.
  for (const size_t at : {size_t{9}, good.size() / 3, good.size() / 2,
                          good.size() - 5, good.size() - 1}) {
    std::vector<u8> bad = good;
    bad[at] ^= 0x40;
    EXPECT_THROW(deserialize(bad), CkptError) << "offset " << at;
  }
}

TEST(Ckpt, RejectsTruncation) {
  Fixture fx;
  const std::vector<u8> good = serialize(capture(fx.core, fx.mem));
  for (const size_t keep : {size_t{0}, size_t{3}, size_t{11}, good.size() / 2,
                            good.size() - 1}) {
    const std::vector<u8> bad(good.begin(),
                              good.begin() + static_cast<long>(keep));
    EXPECT_THROW(deserialize(bad), CkptError) << "kept " << keep;
  }
}

TEST(Ckpt, SkipsUnknownSections) {
  // A newer writer may append sections this reader does not know; they must
  // be skipped, not rejected.
  Fixture fx;
  std::vector<u8> bytes = serialize(capture(fx.core, fx.mem));
  bytes.resize(bytes.size() - 4);  // drop CRC
  const u32 tag = 0x21515151;      // "QQQ!"
  const u64 len = 3;
  const u8 payload[3] = {1, 2, 3};
  bytes.insert(bytes.end(), reinterpret_cast<const u8*>(&tag),
               reinterpret_cast<const u8*>(&tag) + 4);
  bytes.insert(bytes.end(), reinterpret_cast<const u8*>(&len),
               reinterpret_cast<const u8*>(&len) + 8);
  bytes.insert(bytes.end(), payload, payload + 3);
  const u32 crc = crc32({bytes.data(), bytes.size()});
  bytes.insert(bytes.end(), reinterpret_cast<const u8*>(&crc),
               reinterpret_cast<const u8*>(&crc) + 4);
  const Snapshot back = deserialize(bytes);
  EXPECT_EQ(back.cores.size(), 1u);
}

TEST(Ckpt, ApplyRejectsMismatchedTargets) {
  Fixture fx;
  const Snapshot snap = capture(fx.core, fx.mem);

  // Memory size mismatch.
  mem::Memory other_mem(32 * 1024);
  sim::Core other_core(other_mem, sim::CoreConfig::extended());
  EXPECT_THROW(apply(snap, other_core, other_mem), CkptError);

  // Single-core snapshot into a cluster and vice versa.
  cluster::ClusterConfig ccfg;
  ccfg.num_cores = 2;
  cluster::Cluster cl(ccfg);
  EXPECT_THROW(apply(snap, cl), CkptError);
  const Snapshot clsnap = capture(cl);
  EXPECT_THROW(apply(clsnap, fx.core, fx.mem), CkptError);

  // Cluster snapshot into a cluster with a different core count.
  cluster::ClusterConfig ccfg4;
  ccfg4.num_cores = 4;
  cluster::Cluster cl4(ccfg4);
  EXPECT_THROW(apply(clsnap, cl4), SimError);
}

TEST(Ckpt, ClusterRoundtripCarriesArbiter) {
  cluster::ClusterConfig ccfg;
  ccfg.num_cores = 2;
  cluster::Cluster cl(ccfg);
  const Snapshot snap = capture(cl);
  ASSERT_TRUE(snap.is_cluster());
  EXPECT_EQ(snap.cores.size(), 2u);
  EXPECT_EQ(snap.arbiter->last_cycle.size(),
            2u * cl.config().banks_per_core);

  const Snapshot back = deserialize(serialize(snap));
  ASSERT_TRUE(back.is_cluster());
  EXPECT_EQ(back.arbiter->last_cycle, snap.arbiter->last_cycle);
  EXPECT_EQ(back.arbiter->last_core, snap.arbiter->last_core);
  EXPECT_EQ(serialize(back), serialize(snap));
}

TEST(Ckpt, FileSaveLoadRoundtrip) {
  Fixture fx;
  const Snapshot snap = capture(fx.core, fx.mem);
  const std::string path = ::testing::TempDir() + "/xckpt_roundtrip.xckp";
  save_file(snap, path);
  const Snapshot back = load_file(path);
  EXPECT_EQ(serialize(back), serialize(snap));
  EXPECT_THROW(load_file(path + ".does-not-exist"), CkptError);
}

TEST(Ckpt, EmptySnapshotRejected) {
  Snapshot s;
  EXPECT_THROW(serialize(s), CkptError);
}

}  // namespace
}  // namespace xpulp::ckpt
