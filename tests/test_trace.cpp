// Instruction-trace writer.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::sim {
namespace {

namespace r = xasm::reg;

TEST(Trace, WritesOneLinePerInstruction) {
  mem::Memory mem(64 * 1024);
  xasm::Assembler a(0);
  a.li(r::a0, 5);
  a.addi(r::a0, r::a0, 1);
  a.pv_sdotusp(isa::SimdFmt::kN, r::a1, r::a0, r::a0);
  a.ecall();
  auto prog = a.finish();
  prog.load(mem);

  Core core(mem);
  core.reset(0);
  std::ostringstream os;
  TraceWriter trace(core, os);
  core.run();

  EXPECT_EQ(trace.lines_written(), core.perf().instructions);
  const std::string out = os.str();
  EXPECT_NE(out.find("addi a0, zero, 5"), std::string::npos);
  EXPECT_NE(out.find("pv.sdotusp.n a1, a0, a0"), std::string::npos);
  EXPECT_NE(out.find("ecall"), std::string::npos);
  EXPECT_NE(out.find("00000000:"), std::string::npos);
}

TEST(Trace, LimitStopsOutputButNotExecution) {
  mem::Memory mem(64 * 1024);
  xasm::Assembler a(0);
  for (int i = 0; i < 20; ++i) a.nop();
  a.ecall();
  auto prog = a.finish();
  prog.load(mem);

  Core core(mem);
  core.reset(0);
  std::ostringstream os;
  TraceWriter trace(core, os, /*limit=*/5);
  core.run();
  EXPECT_EQ(trace.lines_written(), 5u);
  EXPECT_EQ(core.perf().instructions, 21u);
}

TEST(Trace, DetachStopsTracing) {
  mem::Memory mem(64 * 1024);
  xasm::Assembler a(0);
  for (int i = 0; i < 10; ++i) a.nop();
  a.ecall();
  auto prog = a.finish();
  prog.load(mem);

  Core core(mem);
  core.reset(0);
  std::ostringstream os;
  TraceWriter trace(core, os);
  for (int i = 0; i < 3; ++i) core.step();
  trace.detach();
  core.run();
  EXPECT_EQ(trace.lines_written(), 3u);
}

}  // namespace
}  // namespace xpulp::sim
