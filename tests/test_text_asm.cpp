// Text assembler: syntax coverage, label handling, error reporting, and
// the disassemble -> reassemble round-trip property.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "mem/memory.hpp"
#include "sim/core.hpp"
#include "xasm/text_asm.hpp"

namespace xpulp::xasm {
namespace {

u32 first_word(std::string_view src) {
  return assemble_text(src).words()[0];
}

TEST(TextAsm, RegisterNames) {
  EXPECT_EQ(parse_register("zero"), 0);
  EXPECT_EQ(parse_register("ra"), 1);
  EXPECT_EQ(parse_register("sp"), 2);
  EXPECT_EQ(parse_register("a0"), 10);
  EXPECT_EQ(parse_register("t6"), 31);
  EXPECT_EQ(parse_register("x0"), 0);
  EXPECT_EQ(parse_register("x31"), 31);
  EXPECT_EQ(parse_register("fp"), 8);
  EXPECT_EQ(parse_register("  A0 "), 10);  // case/space tolerant
  EXPECT_THROW(parse_register("x32"), AsmError);
  EXPECT_THROW(parse_register("q7"), AsmError);
}

TEST(TextAsm, BaseInstructions) {
  EXPECT_EQ(first_word("addi ra, sp, 5"), 0x00510093u);
  EXPECT_EQ(first_word("add gp, tp, t0"), 0x005201b3u);
  EXPECT_EQ(first_word("lw a0, 8(sp)"), 0x00812503u);
  EXPECT_EQ(first_word("sw a0, 12(sp)"), 0x00a12623u);
  EXPECT_EQ(first_word("ecall"), 0x00000073u);
  EXPECT_EQ(first_word("mul t0, t1, t2"), 0x027302b3u);
  EXPECT_EQ(first_word("srai ra, sp, 3"), 0x40315093u);
  EXPECT_EQ(first_word("lui ra, 0x12345"), 0x123450b7u);
}

TEST(TextAsm, CommentsAndBlanks) {
  const auto p = assemble_text(R"(
    # a comment-only line

    addi a0, zero, 1   # trailing comment
    // C++-style too
    addi a0, a0, 1
  )");
  EXPECT_EQ(p.size_words(), 2u);
}

TEST(TextAsm, LabelsForwardAndBackward) {
  const auto p = assemble_text(R"(
    start:
      addi a0, zero, 10
    loop:
      addi a0, a0, -1
      bne a0, zero, loop
      beq a0, zero, end
      nop
    end:
      ecall
  )");
  // bne at index 2 jumps back to index 1: offset -4.
  const auto bne = isa::decode(p.words()[2], 8);
  EXPECT_EQ(bne.imm, -4);
  // beq at index 3 jumps to index 5: offset +8.
  const auto beq = isa::decode(p.words()[3], 12);
  EXPECT_EQ(beq.imm, 8);
}

TEST(TextAsm, LabelOnSameLineAsInstruction) {
  const auto p = assemble_text("loop: addi a0, a0, 1\n j loop\n");
  const auto j = isa::decode(p.words()[1], 4);
  EXPECT_EQ(j.op, isa::Mnemonic::kJal);
  EXPECT_EQ(j.imm, -4);
}

TEST(TextAsm, PulpExtensions) {
  const auto p = assemble_text(R"(
    p.lw! a0, 4(a1!)
    p.sw! a0, -4(a2!)
    p.extract a0, a1, 7, 12
    p.clip t0, t1, 8
    lp.setupi x0, 10, body_end
    pv.sdotusp.n a4, a2, a0
    nop
    body_end:
    pv.qnt.n a4, a2, (a0)
    pv.add.sc.b t0, t1, t2
  )");
  const auto lw = isa::decode(p.words()[0], 0);
  EXPECT_EQ(lw.op, isa::Mnemonic::kPLwPostImm);
  EXPECT_EQ(lw.imm, 4);
  const auto sw = isa::decode(p.words()[1], 4);
  EXPECT_EQ(sw.op, isa::Mnemonic::kPSwPostImm);
  EXPECT_EQ(sw.imm, -4);
  const auto ex = isa::decode(p.words()[2], 8);
  EXPECT_EQ(ex.op, isa::Mnemonic::kPExtract);
  EXPECT_EQ(ex.imm2, 7);
  EXPECT_EQ(ex.imm, 12);
  const auto dot = isa::decode(p.words()[5], 20);
  EXPECT_EQ(dot.op, isa::Mnemonic::kPvSdotusp);
  EXPECT_EQ(dot.fmt, isa::SimdFmt::kN);
  const auto qnt = isa::decode(p.words()[7], 28);
  EXPECT_EQ(qnt.op, isa::Mnemonic::kPvQnt);
  const auto sc = isa::decode(p.words()[8], 32);
  EXPECT_EQ(sc.fmt, isa::SimdFmt::kBSc);
}

TEST(TextAsm, ErrorsCarryLineNumbers) {
  try {
    assemble_text("nop\nnop\nbogus a0, a1\n");
    FAIL();
  } catch (const TextAsmError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
  EXPECT_THROW(assemble_text("addi a0, zero, 99999\n"), AsmError);   // range
  EXPECT_THROW(assemble_text("addi a0, zero\n"), TextAsmError);      // arity
  EXPECT_THROW(assemble_text("lw a0, a1\n"), TextAsmError);          // operand
  EXPECT_THROW(assemble_text("beq a0, a1, nowhere\n"), AsmError);    // label
  EXPECT_THROW(assemble_text("lp.setupi x2, 1, l\nl:\n"), TextAsmError);
}

TEST(TextAsm, AssembledProgramRuns) {
  const auto p = assemble_text(R"(
      li   t0, 10
      li   a0, 0
    loop:
      addi a0, a0, 3
      addi t0, t0, -1
      bne  t0, zero, loop
      ecall
  )");
  mem::Memory mem(64 * 1024);
  p.load(mem);
  sim::Core core(mem);
  core.reset(p.entry());
  core.run();
  EXPECT_EQ(core.reg(10), 30u);
}

TEST(TextAsm, HardwareLoopProgramRuns) {
  const auto p = assemble_text(R"(
      li a0, 0
      lp.setupi x0, 12, done
      addi a0, a0, 2
      nop
    done:
      ecall
  )");
  mem::Memory mem(64 * 1024);
  p.load(mem);
  sim::Core core(mem);
  core.reset(p.entry());
  core.run();
  EXPECT_EQ(core.reg(10), 24u);
  EXPECT_EQ(core.perf().hwloop_backedges, 11u);
}

// Round-trip property: disassembler output reassembles to the same word for
// the whole register/immediate instruction set (control flow excluded --
// its textual form uses absolute addresses).
TEST(TextAsm, DisassembleReassembleRoundTrip) {
  Rng rng(0x7e57);
  int checked = 0;
  for (int i = 0; i < 40'000; ++i) {
    const u32 w = rng.next_u32() | 0x3;
    isa::Instr in;
    try {
      in = isa::decode(w, 0);
    } catch (const IllegalInstruction&) {
      continue;
    }
    if (in.size != 4) continue;
    // Skip control flow / system / loop ops whose text uses addresses, and
    // ops the text front end intentionally does not cover.
    using M = isa::Mnemonic;
    switch (in.op) {
      case M::kJal: case M::kJalr: case M::kBeq: case M::kBne:
      case M::kPBeqimm: case M::kPBneimm:
      case M::kBlt: case M::kBge: case M::kBltu: case M::kBgeu:
      case M::kLpStarti: case M::kLpEndi: case M::kLpCount:
      case M::kLpCounti: case M::kLpSetup: case M::kLpSetupi:
      case M::kCsrrw: case M::kCsrrs: case M::kCsrrc:
      case M::kCsrrwi: case M::kCsrrsi: case M::kCsrrci:
      case M::kFence: case M::kAuipc: case M::kLui:
      case M::kMulhsu:
      // Register-addressed memory ops have no textual form yet.
      case M::kPLbPostReg: case M::kPLhPostReg: case M::kPLwPostReg:
      case M::kPLbuPostReg: case M::kPLhuPostReg:
      case M::kPLbRegReg: case M::kPLhRegReg: case M::kPLwRegReg:
      case M::kPLbuRegReg: case M::kPLhuRegReg:
      case M::kPSbPostReg: case M::kPShPostReg: case M::kPSwPostReg:
      case M::kPSbRegReg: case M::kPShRegReg: case M::kPSwRegReg:
        continue;
      default:
        break;
    }
    const u32 canonical = isa::encode(in);
    const std::string text = isa::disassemble(in, 0);
    const auto prog = assemble_text(text + "\n");
    ASSERT_EQ(prog.size_words(), 1u) << text;
    ASSERT_EQ(prog.words()[0], canonical) << text;
    ++checked;
  }
  EXPECT_GT(checked, 2000);
}

}  // namespace
}  // namespace xpulp::xasm
