// General-purpose workload (Table III "GP application"): functional
// checksum and the paper's claim that the extended core runs GP code with
// identical performance.
#include <gtest/gtest.h>

#include "kernels/gp_workload.hpp"

namespace xpulp::kernels {
namespace {

TEST(GpWorkload, ChecksumMatchesHostModel) {
  const auto w = make_gp_workload();
  const auto res = run_gp_workload(w, sim::CoreConfig::extended());
  EXPECT_EQ(res.checksum, w.expected_checksum);
}

TEST(GpWorkload, SameChecksumAndCyclesOnBaseline) {
  const auto w = make_gp_workload();
  const auto ext = run_gp_workload(w, sim::CoreConfig::extended());
  const auto base = run_gp_workload(w, sim::CoreConfig::ri5cy());
  EXPECT_EQ(base.checksum, w.expected_checksum);
  // The extension adds no cycle overhead to general-purpose code.
  EXPECT_EQ(ext.perf.cycles, base.perf.cycles);
  EXPECT_EQ(ext.perf.instructions, base.perf.instructions);
}

TEST(GpWorkload, ClockGatingDoesNotChangeBehaviour) {
  const auto w = make_gp_workload();
  auto nopm = sim::CoreConfig::extended();
  nopm.clock_gating = false;
  const auto res = run_gp_workload(w, nopm);
  EXPECT_EQ(res.checksum, w.expected_checksum);
  const auto pm = run_gp_workload(w, sim::CoreConfig::extended());
  EXPECT_EQ(res.perf.cycles, pm.perf.cycles);  // power knob, not timing
}

TEST(GpWorkload, ScalesWithElementCount) {
  const auto small = make_gp_workload(32);
  const auto large = make_gp_workload(128);
  const auto rs = run_gp_workload(small, sim::CoreConfig::extended());
  const auto rl = run_gp_workload(large, sim::CoreConfig::extended());
  EXPECT_EQ(rs.checksum, small.expected_checksum);
  EXPECT_EQ(rl.checksum, large.expected_checksum);
  // Insertion sort is quadratic: 4x elements >> 4x cycles.
  EXPECT_GT(rl.perf.cycles, rs.perf.cycles * 4);
}

TEST(GpWorkload, ExercisesAllInstructionClasses) {
  const auto w = make_gp_workload();
  const auto res = run_gp_workload(w, sim::CoreConfig::extended());
  EXPECT_GT(res.perf.loads, 0u);
  EXPECT_GT(res.perf.stores, 0u);
  EXPECT_GT(res.perf.taken_branches, 0u);
  EXPECT_GT(res.perf.not_taken_branches, 0u);
  EXPECT_GT(res.perf.mul_ops, 0u);
  EXPECT_GT(res.perf.scalar_alu_ops, 0u);
  EXPECT_EQ(res.perf.dotp_ops[0] + res.perf.dotp_ops[1] +
                res.perf.dotp_ops[2] + res.perf.dotp_ops[3],
            0u);  // no SIMD in GP code
}

}  // namespace
}  // namespace xpulp::kernels
