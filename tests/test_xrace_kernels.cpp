// xrace end-to-end: the static sweep proves every generated parallel
// kernel deployment race-free (zero conflicts, zero unprovable
// footprints) at 1/2/4/8 cores; the shadow phase observes clean runs on
// the cluster and cross-validates; an injected row-overlap deployment is
// caught by BOTH phases at the same pc pair (and, dynamically, at the
// exact conflicting cycle), and the pre-load race gate blocks it.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/race.hpp"
#include "analysis/shadow.hpp"
#include "cluster/parallel_conv.hpp"
#include "qnn/pack.hpp"

namespace xpulp::analysis {
namespace {

using kernels::ConvGenOptions;
using kernels::ConvKernel;
using kernels::ConvLayerData;
using kernels::ConvVariant;

qnn::ConvSpec spec4() {
  qnn::ConvSpec s;
  s.in_h = s.in_w = 6;
  s.in_c = 16;
  s.out_c = 8;
  s.in_bits = s.w_bits = s.out_bits = 4;
  return s;
}

std::vector<xasm::Program> programs_of(const std::vector<ConvKernel>& ks) {
  std::vector<xasm::Program> ps;
  for (const ConvKernel& k : ks) ps.push_back(k.program);
  return ps;
}

/// Two cores, both generated over ALL output rows: their packed output
/// stores collide byte for byte — the canonical injected race.
std::vector<ConvKernel> overlapping_kernels() {
  const qnn::ConvSpec s = spec4();
  std::vector<ConvKernel> ks;
  for (int c = 0; c < 2; ++c) {
    ConvGenOptions o;
    o.code_base = static_cast<addr_t>(c) * 0x4000;
    o.row_begin = 0;
    o.row_end = s.out_h();
    o.buffer_slots = 2;
    o.buffer_slot = c;
    ks.push_back(kernels::generate_conv_kernel(
        s, ConvVariant::kXpulpNN_HwQ, 0x40000, o));
  }
  return ks;
}

// ---- static phase over every generated parallel deployment ----

TEST(XraceStatic, AllParallelKernelDeploymentsProveRaceFree) {
  const auto checks = analyze_parallel_kernels({1, 2, 4, 8});
  ASSERT_GT(checks.size(), 40u);
  for (const RaceCheck& c : checks) {
    EXPECT_TRUE(c.report.clean())
        << c.name << " cores=" << c.cores << "\n" << c.report.to_string();
    EXPECT_EQ(c.report.unprovable.size(), 0u) << c.name;
    for (const Footprint& fp : c.report.footprints) {
      EXPECT_EQ(fp.unsummarized, 0u) << c.name;
    }
  }
  // The matrix must actually span the deployment space.
  bool eight_cores = false;
  bool linear = false;
  bool branch_loops = false;
  for (const RaceCheck& c : checks) {
    eight_cores |= c.cores == 8;
    linear |= c.name.rfind("linear/", 0) == 0;
    branch_loops |= c.name.find("no_hwloops") != std::string::npos;
  }
  EXPECT_TRUE(eight_cores);
  EXPECT_TRUE(linear);
  EXPECT_TRUE(branch_loops);
}

TEST(XraceStatic, InjectedRowOverlapCaughtAtStorePcs) {
  const RaceReport rep = analyze_races(programs_of(overlapping_kernels()));
  EXPECT_EQ(rep.unprovable.size(), 0u);
  ASSERT_FALSE(rep.conflicts.empty());
  bool mirrored = false;
  for (const RaceConflict& c : rep.conflicts) {
    if (c.kind != DiagKind::kCrossCoreWriteWrite) continue;
    EXPECT_EQ(c.core_a, 0);
    EXPECT_EQ(c.core_b, 1);
    // The two pixel-store streams cross-collide, so several pc pairs are
    // reported; the mirrored pair (same store instruction at each code
    // base) must be among them.
    mirrored |= c.pc_b == c.pc_a + 0x4000u;
  }
  EXPECT_TRUE(mirrored);
  const AnalysisReport ar = rep.to_report();
  EXPECT_GE(ar.count(DiagKind::kCrossCoreWriteWrite), 1u);
  EXPECT_TRUE(ar.has_errors());
}

TEST(XraceStatic, ReadOnlyRangeViolationFlagged) {
  const auto ks = cluster::make_parallel_conv_kernels(
      spec4(), ConvVariant::kXpulpNN_HwQ, 2);
  RaceOptions opt;
  // Declare the output region read-only: every output store becomes a
  // violation against the declaration.
  opt.read_only.push_back(
      {ks[0].layout.output, ks[0].layout.output + ks[0].layout.output_bytes});
  const RaceReport rep = analyze_races(programs_of(ks), opt);
  ASSERT_FALSE(rep.conflicts.empty());
  EXPECT_EQ(rep.conflicts.front().core_b, -1);
}

// ---- the pre-load gate ----

TEST(XraceGate, CleanDeploymentLoads) {
  cluster::ClusterConfig cfg;
  cfg.num_cores = 4;
  cluster::Cluster cl(cfg);
  cl.set_pre_load_gate(make_race_gate());
  const auto ks = cluster::make_parallel_conv_kernels(
      spec4(), ConvVariant::kXpulpNN_HwQ, 4);
  EXPECT_NO_THROW(cl.load(programs_of(ks)));
}

TEST(XraceGate, RacyDeploymentRejectedBeforeAnyStateMutates) {
  cluster::ClusterConfig cfg;
  cfg.num_cores = 2;
  cluster::Cluster cl(cfg);
  cl.set_pre_load_gate(make_race_gate());
  try {
    cl.load(programs_of(overlapping_kernels()));
    FAIL() << "gate did not throw";
  } catch (const AnalysisError& e) {
    EXPECT_GE(e.report().count(DiagKind::kCrossCoreWriteWrite), 1u);
    // The gate fired before load() wrote anything: memory still zero.
    EXPECT_EQ(cl.memory().load_u32(0), 0u);
  }
}

// ---- shadow phase on real cluster runs ----

TEST(XraceShadow, CleanParallelRunObservesNoConflicts) {
  const auto data = ConvLayerData::random(spec4(), 42);
  ShadowMemory shadow;
  cluster::ClusterConfig cfg;
  cfg.num_cores = 4;
  const auto res = cluster::run_parallel_conv(
      data, ConvVariant::kXpulpNN_HwQ, cfg,
      [&shadow](cluster::Cluster& cl, const auto&) {
        attach_shadow(cl, shadow);
      });
  EXPECT_TRUE(shadow.clean()) << shadow.to_string();
  EXPECT_GT(shadow.stats().accesses, 0u);
  EXPECT_EQ(res.output.data(), data.golden().data());

  // Cross-validation against the static report of the same deployment.
  const auto ks = cluster::make_parallel_conv_kernels(
      spec4(), ConvVariant::kXpulpNN_HwQ, 4);
  std::string why;
  EXPECT_TRUE(
      validate_against_shadow(analyze_races(programs_of(ks)), shadow, &why))
      << why;
}

TEST(XraceShadow, InjectedOverlapCaughtAtExactPcPairAndCycle) {
  const qnn::ConvSpec s = spec4();
  const auto data = ConvLayerData::random(s, 43);
  const auto ks = overlapping_kernels();
  const auto ps = programs_of(ks);
  const RaceReport srep = analyze_races(ps);

  cluster::ClusterConfig cfg;
  cfg.num_cores = 2;
  cluster::Cluster cl(cfg);
  cl.memory().write_block(ks[0].layout.input,
                          qnn::pack_tensor(data.input, s.in_bits));
  cl.memory().write_block(ks[0].layout.weights,
                          qnn::pack_filter_bank(data.weights, s.w_bits));
  cl.memory().write_block(ks[0].layout.thresholds,
                          data.thresholds.serialize());
  ShadowMemory shadow;
  attach_shadow(cl, shadow);
  cl.load(ps);
  cl.run();

  ASSERT_FALSE(shadow.clean());
  bool ww = false;
  for (const ShadowConflict& c : shadow.conflicts()) {
    if (c.kind != DiagKind::kCrossCoreWriteWrite) continue;
    ww = true;
    // Same mirrored store instruction on both cores, and the collision
    // is ordered: the first access strictly precedes the second.
    EXPECT_EQ(c.pc_b, c.pc_a + 0x4000u);
    EXPECT_LT(c.cycle_a, c.cycle_b);
  }
  EXPECT_TRUE(ww);

  // Every dynamically observed conflict was statically predicted.
  std::string why;
  EXPECT_TRUE(validate_against_shadow(srep, shadow, &why)) << why;
}

}  // namespace
}  // namespace xpulp::analysis
