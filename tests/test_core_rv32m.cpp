// RV32M semantics including the specified division corner cases.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace xpulp {
namespace {

namespace r = xasm::reg;
using test::run_program;

u32 run_binop(void (xasm::Assembler::*op)(u8, u8, u8), i32 a, i32 b) {
  auto res = run_program([&](xasm::Assembler& as) {
    as.li(r::a0, a);
    as.li(r::a1, b);
    (as.*op)(r::a2, r::a0, r::a1);
  });
  return res.regs[r::a2];
}

TEST(Rv32m, Mul) {
  EXPECT_EQ(run_binop(&xasm::Assembler::mul, 7, 6), 42u);
  EXPECT_EQ(run_binop(&xasm::Assembler::mul, -7, 6),
            static_cast<u32>(-42));
  // Low 32 bits on overflow.
  EXPECT_EQ(run_binop(&xasm::Assembler::mul, 0x10000, 0x10000), 0u);
}

TEST(Rv32m, MulHigh) {
  EXPECT_EQ(run_binop(&xasm::Assembler::mulh, -1, -1), 0u);
  EXPECT_EQ(run_binop(&xasm::Assembler::mulh, 0x40000000, 4), 1u);
  EXPECT_EQ(run_binop(&xasm::Assembler::mulhu, -1, -1), 0xfffffffeu);
}

TEST(Rv32m, DivisionBasics) {
  EXPECT_EQ(run_binop(&xasm::Assembler::div, 42, 7), 6u);
  EXPECT_EQ(run_binop(&xasm::Assembler::div, -42, 7),
            static_cast<u32>(-6));
  EXPECT_EQ(run_binop(&xasm::Assembler::div, 43, -7),
            static_cast<u32>(-6));  // truncation toward zero
  EXPECT_EQ(run_binop(&xasm::Assembler::rem, 43, 7), 1u);
  EXPECT_EQ(run_binop(&xasm::Assembler::rem, -43, 7),
            static_cast<u32>(-1));  // sign of the dividend
  EXPECT_EQ(run_binop(&xasm::Assembler::divu, 0x80000000, 2), 0x40000000u);
  EXPECT_EQ(run_binop(&xasm::Assembler::remu, 10, 3), 1u);
}

TEST(Rv32m, DivisionByZero) {
  // RISC-V: q = -1, r = dividend; no trap.
  EXPECT_EQ(run_binop(&xasm::Assembler::div, 42, 0), 0xffffffffu);
  EXPECT_EQ(run_binop(&xasm::Assembler::divu, 42, 0), 0xffffffffu);
  EXPECT_EQ(run_binop(&xasm::Assembler::rem, 42, 0), 42u);
  EXPECT_EQ(run_binop(&xasm::Assembler::remu, 42, 0), 42u);
}

TEST(Rv32m, DivisionOverflow) {
  // INT_MIN / -1: q = INT_MIN, r = 0.
  EXPECT_EQ(run_binop(&xasm::Assembler::div, std::numeric_limits<i32>::min(), -1),
            0x80000000u);
  EXPECT_EQ(run_binop(&xasm::Assembler::rem, std::numeric_limits<i32>::min(), -1),
            0u);
}

TEST(Rv32m, TimingMulIsSingleCycleMulhAndDivStall) {
  auto fast = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 1234);
    a.li(r::a1, 5678);
    a.mul(r::a2, r::a0, r::a1);
  });
  auto slow = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 1234);
    a.li(r::a1, 5678);
    a.mulh(r::a2, r::a0, r::a1);
  });
  // mulh is a 5-cycle multicycle op on RI5CY -> 4 extra cycles.
  EXPECT_EQ(slow.perf.cycles - fast.perf.cycles, 4u);

  auto divp = run_program([](xasm::Assembler& a) {
    a.li(r::a0, 1 << 20);
    a.li(r::a1, 3);
    a.divu(r::a2, r::a0, r::a1);
  });
  EXPECT_GT(divp.perf.mul_div_stall_cycles, 10u);  // serial divider
}

}  // namespace
}  // namespace xpulp
