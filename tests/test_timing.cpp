// Cycle-accuracy contracts of the RI5CY timing model (DESIGN.md §4).
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace xpulp {
namespace {

namespace r = xasm::reg;
using test::run_program;

cycles_t cycles_of(const std::function<void(xasm::Assembler&)>& body) {
  return run_program(body).perf.cycles;
}

TEST(Timing, StraightLineAluIsOneCpi) {
  const cycles_t c = cycles_of([](xasm::Assembler& a) {
    for (int i = 0; i < 10; ++i) a.addi(r::a0, r::a0, 1);
  });
  // 10 ALU ops + ecall.
  EXPECT_EQ(c, 11u);
}

TEST(Timing, TakenBranchCostsThreeCycles) {
  const cycles_t base = cycles_of([](xasm::Assembler& a) {
    a.li(r::a0, 0);
    auto skip = a.new_label();
    a.beq(r::a0, r::a1, skip);  // a1 == 0 -> taken
    a.nop();
    a.bind(skip);
  });
  const cycles_t untaken = cycles_of([](xasm::Assembler& a) {
    a.li(r::a0, 1);
    auto skip = a.new_label();
    a.beq(r::a0, r::a1, skip);  // not taken
    a.nop();
    a.bind(skip);
  });
  // Taken: li + br(3) + ecall = 5. Untaken: li + br(1) + nop + ecall = 4.
  EXPECT_EQ(base, 5u);
  EXPECT_EQ(untaken, 4u);
}

TEST(Timing, JumpCostsTwoCycles) {
  const cycles_t c = cycles_of([](xasm::Assembler& a) {
    auto l = a.new_label();
    a.j(l);
    a.nop();
    a.bind(l);
  });
  EXPECT_EQ(c, 3u);  // j (2) + ecall
}

TEST(Timing, LoadUseHazardStallsOneCycle) {
  const cycles_t hazard = cycles_of([](xasm::Assembler& a) {
    a.lw(r::a0, r::zero, 0x100);
    a.addi(r::a1, r::a0, 1);  // consumes the load result immediately
  });
  const cycles_t no_hazard = cycles_of([](xasm::Assembler& a) {
    a.lw(r::a0, r::zero, 0x100);
    a.addi(r::a1, r::a2, 1);  // independent
  });
  EXPECT_EQ(hazard, no_hazard + 1);
}

TEST(Timing, LoadUseHazardAppliesToStoreData) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::s0, 0x100);
    a.lw(r::a0, r::s0, 0);
    a.sw(r::a0, r::s0, 4);  // store data depends on the load
  });
  EXPECT_EQ(res.perf.load_use_stall_cycles, 1u);
}

TEST(Timing, HardwareLoopBackEdgeIsFree) {
  // Equivalent loops: hardware loop vs branch loop, 50 iterations x 2 ops.
  const cycles_t hw = cycles_of([](xasm::Assembler& a) {
    a.li(r::t0, 50);
    auto end = a.new_label();
    a.lp_setup(0, r::t0, end);
    a.addi(r::a0, r::a0, 1);
    a.addi(r::a1, r::a1, 1);
    a.bind(end);
  });
  const cycles_t sw = cycles_of([](xasm::Assembler& a) {
    a.li(r::t0, 50);
    auto loop = a.here();
    a.addi(r::a0, r::a0, 1);
    a.addi(r::a1, r::a1, 1);
    a.addi(r::t0, r::t0, -1);
    a.bne(r::t0, r::zero, loop);
  });
  // hw: 2 setup + 100 body + ecall = 103.
  EXPECT_EQ(hw, 103u);
  // sw: 1 + 50*(2+1) + 49*3 (taken) + 1 (fall-through) + ecall = 300.
  EXPECT_EQ(sw, 300u);
}

TEST(Timing, MisalignedAccessAddsOneCycle) {
  const cycles_t aligned = cycles_of([](xasm::Assembler& a) {
    a.li(r::s0, 0x100);
    a.lw(r::a0, r::s0, 0);
  });
  const cycles_t misaligned = cycles_of([](xasm::Assembler& a) {
    a.li(r::s0, 0x102);
    a.lw(r::a0, r::s0, 0);
  });
  EXPECT_EQ(misaligned, aligned + 1);
}

TEST(Timing, QntStallsReportedSeparately) {
  auto res = run_program(
      [](xasm::Assembler& a) {
        a.li(r::a0, 0);
        a.li(r::a1, 0x2000);
        a.pv_qnt(2, r::a2, r::a0, r::a1);
        a.pv_qnt(2, r::a2, r::a0, r::a1);
      });
  EXPECT_EQ(res.perf.qnt_stall_cycles, 8u);  // 2 x (5 - 1)
  EXPECT_EQ(res.perf.qnt_ops, 2u);
}

TEST(Timing, MemoryContentionStallsAccumulate) {
  auto res = run_program(
      [](xasm::Assembler& a) {
        a.li(r::s0, 0x100);
        for (int i = 0; i < 8; ++i) a.lw(r::a0, r::s0, 0);
      },
      sim::CoreConfig::extended(),
      [](mem::Memory& m, sim::Core&) { m.set_contention_period(2); });
  EXPECT_EQ(res.mem.stats().contention_stalls, 4u);
  EXPECT_EQ(res.perf.mem_stall_cycles, 4u);
}

TEST(Timing, PerfCountersAreConsistent) {
  auto res = run_program([](xasm::Assembler& a) {
    a.li(r::t0, 10);
    auto loop = a.here();
    a.lw(r::a0, r::zero, 0x100);
    a.addi(r::a0, r::a0, 1);  // load-use each iteration
    a.addi(r::t0, r::t0, -1);
    a.bne(r::t0, r::zero, loop);
  });
  // cycles = instructions + all stall categories.
  const auto& p = res.perf;
  EXPECT_EQ(p.cycles,
            p.instructions + p.branch_stall_cycles + p.load_use_stall_cycles +
                p.mem_stall_cycles + p.mul_div_stall_cycles +
                p.qnt_stall_cycles);
  EXPECT_EQ(p.taken_branches, 9u);
  EXPECT_EQ(p.not_taken_branches, 1u);
  EXPECT_EQ(p.loads, 10u);
}

}  // namespace
}  // namespace xpulp
